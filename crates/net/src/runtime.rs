//! The node runtime: hosts the same [`VsNode`]`<`[`TimedVsToTo`]`>` state
//! machine as the simulator and the threaded runtime, with any
//! [`Transport`] implementation as the event sink.
//!
//! This is the third event source for the one protocol implementation —
//! the "mapping of the abstract algorithm to the target platform" the
//! paper anticipates. The protocol-facing half lives in [`NodeCore`]: a
//! plain state machine (flush effects, handle one [`Incoming`], fire due
//! timers) with **no threads and no sockets**, so the deterministic
//! simulation harness (`gcs-sim`) can drive the exact code the TCP
//! deployment runs. [`NetNode`] wraps a `NodeCore` in a thread fed by a
//! [`TcpTransport`] event channel. Emitted events are recorded with a
//! (time, sequence) stamp from a [`Clock`] shared across a cluster, so
//! per-node traces can be merged into one nondecreasing timed trace for
//! the safety checkers.
//!
//! Crash/recovery: [`NodeCore::stable_state`] snapshots the state assumed
//! to survive on stable storage ([`StableState`]) and
//! [`NodeCore::recover`]/[`NetNode::start_recovered`] rebuild a fresh
//! incarnation from it — no installed view, volatile token/buffers gone,
//! but view-identifier watermarks, the message-id counter, and the
//! `VStoTO` client layer intact, which is exactly what the VS/TO safety
//! specs need across a restart.

use crate::transport::{
    Incoming, LockExt, ShutdownReport, TcpTransport, Transport, TransportConfig,
};
use gcs_ioa::TimedTrace;
use gcs_model::{Majority, ProcId, Time, Value, View};
use gcs_netsim::{CollectedEffects, Process, TraceEvent};
use gcs_obs::{trace::TraceBuf, Counter, EventKind, Gauge, Obs, Registry};
use gcs_vsimpl::{DetectorBounds, ImplEvent, ProtoConfig, StableState, TimedVsToTo, VsNode, Wire};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shared time base: milliseconds since an epoch plus a global event
/// sequence, so traces recorded on different nodes (different threads,
/// even different processes on one host would need an external merge) can
/// be ordered consistently.
///
/// A clock is either *wall* (epoch at construction, reads the OS) or
/// *manual* (starts at 0, advanced explicitly) — the manual mode is what
/// makes the simulation harness deterministic: the same nodes stamp their
/// recordings with virtual time instead.
pub struct Clock {
    epoch: Instant,
    seq: AtomicU64,
    manual_ms: Option<AtomicU64>,
}

impl Clock {
    /// A fresh wall clock with the epoch at "now".
    pub fn new() -> Arc<Clock> {
        Arc::new(Clock { epoch: Instant::now(), seq: AtomicU64::new(0), manual_ms: None })
    }

    /// A manual (virtual) clock starting at 0 ms; advance it with
    /// [`Clock::advance_to`].
    pub fn manual() -> Arc<Clock> {
        Arc::new(Clock {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            manual_ms: Some(AtomicU64::new(0)),
        })
    }

    /// Milliseconds since the epoch (wall) or the current virtual time
    /// (manual).
    pub fn now_ms(&self) -> Time {
        match &self.manual_ms {
            // ordering: Relaxed — monotone virtual-time register with no
            // dependent data; readers only need a recent value, and the
            // checkers re-sort merged traces by (time, seq) anyway.
            Some(m) => m.load(Ordering::Relaxed) as Time,
            None => self.epoch.elapsed().as_millis() as Time,
        }
    }

    /// Advances a manual clock to `t_ms` (monotone: earlier values are
    /// ignored). No-op on a wall clock.
    pub fn advance_to(&self, t_ms: Time) {
        if let Some(m) = &self.manual_ms {
            // ordering: Relaxed — fetch_max keeps the register monotone
            // on its own; nothing is published under this store (see
            // now_ms above).
            m.fetch_max(t_ms, Ordering::Relaxed);
        }
    }

    /// Whether this is a manual (virtual-time) clock.
    pub fn is_manual(&self) -> bool {
        self.manual_ms.is_some()
    }

    /// The next global event sequence number.
    pub fn next_seq(&self) -> u64 {
        // ordering: SeqCst — merge stamps across all nodes of a cluster
        // must form one total order every thread agrees on; (time, seq)
        // is the tiebreaker when per-node traces are merged for the
        // safety checkers, so this counter pays for the strongest order.
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Claims a contiguous block of `n` sequence numbers and returns the
    /// first. One atomic per flush instead of one per event: the block is
    /// claimed before the flush's sends go out, so any event another node
    /// records as a consequence of those sends still claims a later
    /// block — the merged order stays causally consistent, it is merely
    /// coarsened to flush granularity between concurrent nodes.
    pub fn next_seq_block(&self, n: u64) -> u64 {
        // ordering: SeqCst — same total-order contract as next_seq.
        self.seq.fetch_add(n, Ordering::SeqCst)
    }
}

/// One recorded trace event with its merge stamp.
#[derive(Clone, Debug)]
pub struct Recorded {
    /// Milliseconds since the cluster clock's epoch.
    pub time: Time,
    /// Global sequence number (total order across the cluster).
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent<ImplEvent>,
}

/// Merges per-node recordings into one timed trace ordered by the global
/// sequence, with times clamped nondecreasing (threads race, so a later
/// sequence number can carry an earlier millisecond reading).
pub fn merge_recordings(per_node: &[Vec<Recorded>]) -> TimedTrace<TraceEvent<ImplEvent>> {
    let mut all: Vec<Recorded> = per_node.iter().flatten().cloned().collect();
    all.sort_by_key(|r| r.seq);
    let mut trace = TimedTrace::new();
    for r in all {
        let at = r.time.max(trace.last_time());
        trace.push(at, r.event);
    }
    trace
}

/// The protocol half of a node, decoupled from threads and sockets: the
/// `VsNode<TimedVsToTo>` state machine plus its pending timers, effect
/// collector, and recording sinks. Drive it by calling [`NodeCore::boot`]
/// once, then [`NodeCore::handle`] per incoming event and
/// [`NodeCore::tick`] whenever [`NodeCore::next_timer_due`] falls due —
/// the threaded [`NetNode`] and the deterministic `gcs-sim` world both do
/// exactly this.
pub struct NodeCore {
    id: ProcId,
    node: VsNode<TimedVsToTo>,
    fx: CollectedEffects<Wire, ImplEvent>,
    timers: Vec<(Time, u64)>,
    clock: Arc<Clock>,
    recorded: Arc<Mutex<Vec<Recorded>>>,
    delivered: Arc<Mutex<Vec<(ProcId, Value)>>>,
    views: Arc<Mutex<Vec<View>>>,
    views_ctr: Counter,
    deliveries_ctr: Counter,
    submits_ctr: Counter,
    trace: TraceBuf,
    // Adaptive-detector export: the registry plus this node's label set,
    // kept so the δ̂/π̂ gauges can be created lazily on the first bound
    // change — a fixed-policy node never publishes them, keeping its
    // metric set byte-identical to pre-adaptive builds.
    registry: Registry,
    node_label: String,
    group_label: Option<String>,
    last_bounds: Option<DetectorBounds>,
    detector_gauges: Option<(Gauge, Gauge)>,
}

impl NodeCore {
    /// A fresh node for processor `id`, recording into `obs` and stamping
    /// with `clock`.
    pub fn new(id: ProcId, proto: ProtoConfig, clock: Arc<Clock>, obs: &Obs) -> NodeCore {
        NodeCore::new_in_group(id, proto, clock, obs, None)
    }

    /// Like [`NodeCore::new`], but for a node hosting one group of a
    /// sharded deployment: counters carry a `group` label so per-group
    /// throughput can be told apart on one shared registry.
    pub fn new_in_group(
        id: ProcId,
        proto: ProtoConfig,
        clock: Arc<Clock>,
        obs: &Obs,
        group: Option<u32>,
    ) -> NodeCore {
        let n = proto.procs.len();
        let p0 = proto.p0.clone();
        // Members of P₀ start with v₀ already installed (no NewView event
        // is emitted for it), so seed the view history accordingly.
        let initial = proto.p0.contains(&id).then(|| View::initial(proto.p0.clone()));
        let quorums = Arc::new(Majority::new(n));
        let node = VsNode::new(id, proto, TimedVsToTo::new(id, &p0, quorums));
        NodeCore::assemble(id, node, initial, clock, obs, group)
    }

    /// A recovered incarnation of processor `id`, rebuilt from the
    /// [`StableState`] its previous incarnation persisted. It starts with
    /// no installed view and rejoins through the normal membership path.
    pub fn recover(
        id: ProcId,
        proto: ProtoConfig,
        clock: Arc<Clock>,
        obs: &Obs,
        stable: StableState<TimedVsToTo>,
    ) -> NodeCore {
        NodeCore::recover_in_group(id, proto, clock, obs, stable, None)
    }

    /// Like [`NodeCore::recover`], but with a `group` counter label (see
    /// [`NodeCore::new_in_group`]).
    pub fn recover_in_group(
        id: ProcId,
        proto: ProtoConfig,
        clock: Arc<Clock>,
        obs: &Obs,
        stable: StableState<TimedVsToTo>,
        group: Option<u32>,
    ) -> NodeCore {
        let node = VsNode::recover(id, proto, stable);
        NodeCore::assemble(id, node, None, clock, obs, group)
    }

    fn assemble(
        id: ProcId,
        node: VsNode<TimedVsToTo>,
        initial: Option<View>,
        clock: Arc<Clock>,
        obs: &Obs,
        group: Option<u32>,
    ) -> NodeCore {
        let node_label = id.0.to_string();
        let group_label = group.map(|g| g.to_string());
        let mut l = vec![("node", node_label.as_str())];
        if let Some(g) = group_label.as_deref() {
            l.push(("group", g));
        }
        NodeCore {
            id,
            node,
            fx: CollectedEffects::new(0),
            timers: Vec::new(),
            clock,
            recorded: Arc::new(Mutex::new(Vec::new())),
            delivered: Arc::new(Mutex::new(Vec::new())),
            views: Arc::new(Mutex::new(initial.into_iter().collect())),
            views_ctr: obs.registry.counter_labeled("node_views_installed_total", &l),
            deliveries_ctr: obs.registry.counter_labeled("node_deliveries_total", &l),
            submits_ctr: obs.registry.counter_labeled("node_submits_total", &l),
            trace: obs.trace.clone(),
            registry: obs.registry.clone(),
            node_label,
            group_label,
            last_bounds: None,
            detector_gauges: None,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Runs the protocol's `on_start` and flushes its effects.
    pub fn boot(&mut self, transport: &dyn Transport) {
        self.fx.set_now(self.clock.now_ms());
        self.node.on_start(&mut self.fx.ctx());
        self.flush(transport);
    }

    /// Handles one incoming event; returns `false` on [`Incoming::Stop`].
    pub fn handle(&mut self, ev: Incoming, transport: &dyn Transport) -> bool {
        match ev {
            Incoming::Stop => return false,
            Incoming::Wire { from, wire } => {
                self.fx.set_now(self.clock.now_ms());
                self.node.on_message(from, wire, &mut self.fx.ctx());
            }
            Incoming::Submit { batch } => {
                self.fx.set_now(self.clock.now_ms());
                for a in batch {
                    self.node.on_input(a, &mut self.fx.ctx());
                }
            }
        }
        self.flush(transport);
        true
    }

    /// Fires every timer due at the clock's current time.
    pub fn tick(&mut self, transport: &dyn Transport) {
        let now = self.clock.now_ms();
        self.fx.set_now(now);
        let due: Vec<u64> =
            self.timers.iter().filter(|(d, _)| *d <= now).map(|(_, k)| *k).collect();
        self.timers.retain(|(d, _)| *d > now);
        for kind in due {
            self.node.on_timer(kind, &mut self.fx.ctx());
        }
        self.flush(transport);
    }

    /// The earliest pending timer deadline, in clock milliseconds.
    pub fn next_timer_due(&self) -> Option<Time> {
        self.timers.iter().map(|(d, _)| *d).min()
    }

    /// Records emitted events, hands sends to the transport, and absorbs
    /// freshly set timers. Emits are recorded *before* sends go out so
    /// that, in the merged global order, this node's gpsnd precedes any
    /// peer's gprcv of the same message.
    fn flush(&mut self, transport: &dyn Transport) {
        // One batched token can deliver hundreds of messages in a single
        // flush; collect them and hand the transport the whole batch so
        // clients get one vectored write instead of a syscall apiece. The
        // recording sinks are batched the same way: one clock read, one
        // claimed sequence block, one lock acquisition per flush instead
        // of one per event — at ring throughput the per-event constants
        // here were a measurable slice of the whole cluster's CPU.
        let emits = std::mem::take(&mut self.fx.emits);
        if !emits.is_empty() {
            let time = self.clock.now_ms();
            let seq0 = self.clock.next_seq_block(emits.len() as u64);
            let mut deliveries: Vec<(ProcId, Value)> = Vec::new();
            let mut new_views: Vec<View> = Vec::new();
            let mut kinds: Vec<EventKind> = Vec::new();
            for e in &emits {
                match e {
                    ImplEvent::Brcv { src, a, .. } => {
                        deliveries.push((*src, a.clone()));
                        kinds.push(EventKind::Brcv {
                            node: self.id.0,
                            src: src.0,
                            value: a.fingerprint(),
                        });
                    }
                    ImplEvent::NewView { v, .. } => {
                        self.views.lock_clean().push(v.clone());
                        self.views_ctr.inc();
                        new_views.push(v.clone());
                        kinds.push(EventKind::ViewChange {
                            node: self.id.0,
                            epoch: v.id.epoch,
                            size: v.set.len() as u32,
                        });
                    }
                    ImplEvent::Bcast { a, .. } => {
                        self.submits_ctr.inc();
                        kinds.push(EventKind::Bcast { node: self.id.0, value: a.fingerprint() });
                    }
                    _ => {}
                }
            }
            self.trace.record_many(kinds);
            {
                let mut rec = self.recorded.lock_clean();
                rec.extend(emits.into_iter().enumerate().map(|(i, e)| Recorded {
                    time,
                    seq: seq0 + i as u64,
                    event: TraceEvent::App(e),
                }));
            }
            if !deliveries.is_empty() {
                self.deliveries_ctr.add(deliveries.len() as u64);
                self.delivered.lock_clean().extend(deliveries.iter().cloned());
                transport.push_deliveries(&deliveries);
            }
            // Installed views go out to subscribers too: shard routers
            // refresh their cached shard map from these pushes instead of
            // polling, so a router learns about a membership change from
            // the first surviving member it hears from.
            for v in &new_views {
                transport.push_view(v);
            }
        }
        for (to, wire) in self.fx.take_sends() {
            transport.send(to, wire);
        }
        for (delay, kind) in std::mem::take(&mut self.fx.timers) {
            self.timers.push((self.clock.now_ms() + delay, kind));
        }
        self.export_detector_bounds();
    }

    /// Publishes the adaptive detector's effective `δ̂/π̂` when they move:
    /// a `DetectorBound` trace event (feeding the re-derived b/d
    /// monitors) plus `detector_delta_hat_ms`/`detector_pi_hat_ms`
    /// gauges. A no-op under the fixed policy.
    fn export_detector_bounds(&mut self) {
        let bounds = self.node.detector_bounds();
        if bounds.is_none() || bounds == self.last_bounds {
            return;
        }
        self.last_bounds = bounds;
        if let Some(b) = bounds {
            if self.detector_gauges.is_none() {
                let mut l = vec![("node", self.node_label.as_str())];
                if let Some(g) = self.group_label.as_deref() {
                    l.push(("group", g));
                }
                self.detector_gauges = Some((
                    self.registry.gauge_labeled("detector_delta_hat_ms", &l),
                    self.registry.gauge_labeled("detector_pi_hat_ms", &l),
                ));
            }
            if let Some((dg, pg)) = &self.detector_gauges {
                dg.set(b.delta_hat_ms as i64);
                pg.set(b.pi_hat_ms as i64);
            }
            self.trace.record(EventKind::DetectorBound {
                node: self.id.0,
                delta_hat_ms: b.delta_hat_ms,
                pi_hat_ms: b.pi_hat_ms,
            });
        }
    }

    /// Snapshots the stable-storage state (for crash/recovery modeling).
    pub fn stable_state(&self) -> StableState<TimedVsToTo> {
        self.node.stable_state()
    }

    /// The currently installed view, if any.
    pub fn current_view(&self) -> Option<View> {
        self.node.current_view().cloned()
    }

    /// Shared handle to the recorded (stamped) trace events.
    pub fn recorded_handle(&self) -> Arc<Mutex<Vec<Recorded>>> {
        self.recorded.clone()
    }

    /// Shared handle to the client deliveries.
    pub fn delivered_handle(&self) -> Arc<Mutex<Vec<(ProcId, Value)>>> {
        self.delivered.clone()
    }

    /// Shared handle to the installed-view history.
    pub fn views_handle(&self) -> Arc<Mutex<Vec<View>>> {
        self.views.clone()
    }

    /// What this node has delivered to its client so far.
    pub fn delivered(&self) -> Vec<(ProcId, Value)> {
        self.delivered.lock_clean().clone()
    }

    /// Every view this node has installed, in order.
    pub fn views(&self) -> Vec<View> {
        self.views.lock_clean().clone()
    }

    /// A snapshot of this node's recorded (stamped) trace events.
    pub fn recorded(&self) -> Vec<Recorded> {
        self.recorded.lock_clean().clone()
    }
}

/// Drives a [`NodeCore`] on the current thread until it stops: boot,
/// then alternate between channel events and due timers, draining hot
/// channels in bounded batches so timers are not starved under load.
/// This is the event loop [`NetNode`] runs on its node thread; a sharded
/// node runs one such loop per hosted group, each against its own
/// grouped transport endpoint. Returns the core on exit so callers can
/// snapshot [`NodeCore::stable_state`] for crash/recovery modeling.
pub fn run_core_loop(
    mut core: NodeCore,
    events_rx: mpsc::Receiver<Incoming>,
    transport: &dyn Transport,
    clock: &Clock,
) -> NodeCore {
    core.boot(transport);
    loop {
        // Wait for the next event or timer.
        let timeout = core
            .next_timer_due()
            .map(|due| Duration::from_millis(due.saturating_sub(clock.now_ms())))
            .unwrap_or(Duration::from_millis(20));
        match events_rx.recv_timeout(timeout) {
            Ok(ev) => {
                if !core.handle(ev, transport) {
                    return core;
                }
                // Drain what queued behind it (bounded) so a hot channel
                // is consumed in batches, then fire any timer that came
                // due meanwhile — recv_timeout alone would starve timers
                // under sustained load.
                for _ in 0..128 {
                    match events_rx.try_recv() {
                        Ok(ev) => {
                            if !core.handle(ev, transport) {
                                return core;
                            }
                        }
                        Err(_) => break,
                    }
                }
                if core.next_timer_due().is_some_and(|due| due <= clock.now_ms()) {
                    core.tick(transport);
                }
            }
            Err(RecvTimeoutError::Timeout) => core.tick(transport),
            Err(RecvTimeoutError::Disconnected) => return core,
        }
    }
}

/// A running VS/TO node behind a TCP endpoint.
pub struct NetNode {
    id: ProcId,
    transport: Arc<TcpTransport>,
    events_tx: Sender<Incoming>,
    clock: Arc<Clock>,
    recorded: Arc<Mutex<Vec<Recorded>>>,
    delivered: Arc<Mutex<Vec<(ProcId, Value)>>>,
    views: Arc<Mutex<Vec<View>>>,
    handle: Mutex<Option<JoinHandle<NodeCore>>>,
    final_core: Mutex<Option<NodeCore>>,
}

impl NetNode {
    /// Boots node `id`: binds nothing itself — the caller provides the
    /// already-bound `listener` (so ephemeral ports can be collected
    /// before any node starts) and the full peer address map.
    pub fn start(
        id: ProcId,
        proto: ProtoConfig,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        transport_cfg: TransportConfig,
        clock: Arc<Clock>,
    ) -> io::Result<NetNode> {
        NetNode::start_with_obs(id, proto, listener, peers, transport_cfg, clock, Obs::new())
    }

    /// Like [`NetNode::start`], but records metrics and trace events into
    /// the caller's `obs` (shared across a cluster so the merged event
    /// stream sits on one clock).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_obs(
        id: ProcId,
        proto: ProtoConfig,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        transport_cfg: TransportConfig,
        clock: Arc<Clock>,
        obs: Obs,
    ) -> io::Result<NetNode> {
        let core = NodeCore::new(id, proto, clock.clone(), &obs);
        NetNode::launch(core, listener, peers, transport_cfg, clock, obs)
    }

    /// Boots a *recovered* incarnation of node `id` from the
    /// [`StableState`] its previous incarnation persisted. Pass a
    /// `transport_cfg` whose `generation_base` exceeds every generation
    /// the old incarnation used (e.g. `incarnation << 32`), or peers will
    /// refuse the new connections as stale.
    #[allow(clippy::too_many_arguments)]
    pub fn start_recovered(
        id: ProcId,
        proto: ProtoConfig,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        transport_cfg: TransportConfig,
        clock: Arc<Clock>,
        obs: Obs,
        stable: StableState<TimedVsToTo>,
    ) -> io::Result<NetNode> {
        let core = NodeCore::recover(id, proto, clock.clone(), &obs, stable);
        NetNode::launch(core, listener, peers, transport_cfg, clock, obs)
    }

    fn launch(
        core: NodeCore,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        transport_cfg: TransportConfig,
        clock: Arc<Clock>,
        obs: Obs,
    ) -> io::Result<NetNode> {
        let id = core.id();
        let (events_tx, events_rx) = mpsc::channel::<Incoming>();
        let transport = TcpTransport::start_with_obs(
            id,
            listener,
            peers,
            transport_cfg,
            events_tx.clone(),
            obs.clone(),
        )?;
        let recorded = core.recorded_handle();
        let delivered = core.delivered_handle();
        let views = core.views_handle();

        let handle = {
            let transport = transport.clone();
            let clock = clock.clone();
            std::thread::spawn(move || run_core_loop(core, events_rx, &*transport, &clock))
        };

        Ok(NetNode {
            id,
            transport,
            events_tx,
            clock,
            recorded,
            delivered,
            views,
            handle: Mutex::new(Some(handle)),
            final_core: Mutex::new(None),
        })
    }

    /// This node's identifier.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The transport endpoint (for severing links, counters, the bound
    /// address).
    pub fn transport(&self) -> &Arc<TcpTransport> {
        &self.transport
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Submits a client value locally (same path a TCP client's `Submit`
    /// frame takes).
    pub fn submit(&self, a: Value) {
        let _ = self.events_tx.send(Incoming::Submit { batch: vec![a] });
    }

    /// What this node has delivered to its client so far.
    pub fn delivered(&self) -> Vec<(ProcId, Value)> {
        self.delivered.lock_clean().clone()
    }

    /// How many values this node has delivered so far. Cheap (no clone),
    /// for progress polling against a live high-throughput node.
    pub fn delivered_count(&self) -> usize {
        self.delivered.lock_clean().len()
    }

    /// Every view this node has installed, in order.
    pub fn views(&self) -> Vec<View> {
        self.views.lock_clean().clone()
    }

    /// A snapshot of this node's recorded (stamped) trace events.
    pub fn recorded(&self) -> Vec<Recorded> {
        self.recorded.lock_clean().clone()
    }

    /// Stops the node loop and the transport; returns the final recording.
    pub fn stop(&self) -> Vec<Recorded> {
        self.stop_report().0
    }

    /// Like [`NetNode::stop`], but also reports whether every transport
    /// thread was joined within the shutdown deadline.
    pub fn stop_report(&self) -> (Vec<Recorded>, ShutdownReport) {
        let _ = self.events_tx.send(Incoming::Stop);
        if let Some(h) = self.handle.lock_clean().take() {
            if let Ok(core) = h.join() {
                *self.final_core.lock_clean() = Some(core);
            }
        }
        let report = self.transport.stop();
        (self.recorded.lock_clean().clone(), report)
    }

    /// Models a crash: stops this incarnation (volatile state — installed
    /// view, token, buffers — is discarded with it) and returns the
    /// [`StableState`] snapshot a restart recovers from, plus the final
    /// recording. Restart with [`NetNode::start_recovered`].
    pub fn crash(&self) -> (StableState<TimedVsToTo>, Vec<Recorded>) {
        let (recorded, _) = self.stop_report();
        let stable = self
            .final_core
            .lock_clean()
            .take()
            // gcs-lint: allow(panic_path, reason = "harness crash API with a documented contract: stop_report() stores the core before returning, so absence means the node loop itself panicked — surface that loudly in the test")
            .expect("node loop exited cleanly")
            .stable_state();
        (stable, recorded)
    }
}
