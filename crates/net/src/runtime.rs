//! The node runtime: hosts the same [`VsNode`]`<`[`TimedVsToTo`]`>` state
//! machine as the simulator and the threaded runtime, with the TCP
//! [`Transport`] as the event source.
//!
//! This is the third event source for the one protocol implementation —
//! the "mapping of the abstract algorithm to the target platform" the
//! paper anticipates. The node loop is the same shape as
//! `vsimpl::threaded`: flush collected effects, then block on the next
//! transport event or local timer. Emitted events are recorded with a
//! (time, sequence) stamp from a [`Clock`] shared across a cluster, so
//! per-node traces can be merged into one nondecreasing timed trace for
//! the safety checkers.

use crate::transport::{Incoming, Transport, TransportConfig};
use gcs_ioa::TimedTrace;
use gcs_model::{Majority, ProcId, Time, Value, View};
use gcs_netsim::{CollectedEffects, Process, TraceEvent};
use gcs_obs::{EventKind, Obs};
use gcs_vsimpl::{ImplEvent, ProtoConfig, TimedVsToTo, VsNode, Wire};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shared time base: milliseconds since an epoch plus a global event
/// sequence, so traces recorded on different nodes (different threads,
/// even different processes on one host would need an external merge) can
/// be ordered consistently.
pub struct Clock {
    epoch: Instant,
    seq: AtomicU64,
}

impl Clock {
    /// A fresh clock with the epoch at "now".
    pub fn new() -> Arc<Clock> {
        Arc::new(Clock { epoch: Instant::now(), seq: AtomicU64::new(0) })
    }

    /// Milliseconds since the epoch.
    pub fn now_ms(&self) -> Time {
        self.epoch.elapsed().as_millis() as Time
    }

    /// The next global event sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }
}

/// One recorded trace event with its merge stamp.
#[derive(Clone, Debug)]
pub struct Recorded {
    /// Milliseconds since the cluster clock's epoch.
    pub time: Time,
    /// Global sequence number (total order across the cluster).
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent<ImplEvent>,
}

/// Merges per-node recordings into one timed trace ordered by the global
/// sequence, with times clamped nondecreasing (threads race, so a later
/// sequence number can carry an earlier millisecond reading).
pub fn merge_recordings(per_node: &[Vec<Recorded>]) -> TimedTrace<TraceEvent<ImplEvent>> {
    let mut all: Vec<Recorded> = per_node.iter().flatten().cloned().collect();
    all.sort_by_key(|r| r.seq);
    let mut trace = TimedTrace::new();
    for r in all {
        let at = r.time.max(trace.last_time());
        trace.push(at, r.event);
    }
    trace
}

/// A running VS/TO node behind a TCP endpoint.
pub struct NetNode {
    id: ProcId,
    transport: Arc<Transport>,
    events_tx: Sender<Incoming>,
    clock: Arc<Clock>,
    recorded: Arc<Mutex<Vec<Recorded>>>,
    delivered: Arc<Mutex<Vec<(ProcId, Value)>>>,
    views: Arc<Mutex<Vec<View>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl NetNode {
    /// Boots node `id`: binds nothing itself — the caller provides the
    /// already-bound `listener` (so ephemeral ports can be collected
    /// before any node starts) and the full peer address map.
    pub fn start(
        id: ProcId,
        proto: ProtoConfig,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        transport_cfg: TransportConfig,
        clock: Arc<Clock>,
    ) -> io::Result<NetNode> {
        NetNode::start_with_obs(id, proto, listener, peers, transport_cfg, clock, Obs::new())
    }

    /// Like [`NetNode::start`], but records metrics and trace events into
    /// the caller's `obs` (shared across a cluster so the merged event
    /// stream sits on one clock).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_obs(
        id: ProcId,
        proto: ProtoConfig,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        transport_cfg: TransportConfig,
        clock: Arc<Clock>,
        obs: Obs,
    ) -> io::Result<NetNode> {
        let (events_tx, events_rx) = mpsc::channel::<Incoming>();
        let transport = Transport::start_with_obs(
            id,
            listener,
            peers,
            transport_cfg,
            events_tx.clone(),
            obs.clone(),
        )?;
        let recorded = Arc::new(Mutex::new(Vec::new()));
        let delivered = Arc::new(Mutex::new(Vec::new()));
        // Members of P₀ start with v₀ already installed (no NewView event
        // is emitted for it), so seed the view history accordingly.
        let initial = proto.p0.contains(&id).then(|| View::initial(proto.p0.clone()));
        let views = Arc::new(Mutex::new(initial.into_iter().collect::<Vec<_>>()));

        let handle = {
            let transport = transport.clone();
            let clock = clock.clone();
            let recorded = recorded.clone();
            let delivered = delivered.clone();
            let views = views.clone();
            let n = proto.procs.len();
            let p0 = proto.p0.clone();
            let node_label = id.0.to_string();
            let views_ctr = obs
                .registry
                .counter_labeled("node_views_installed_total", &[("node", &node_label)]);
            let deliveries_ctr =
                obs.registry.counter_labeled("node_deliveries_total", &[("node", &node_label)]);
            let submits_ctr =
                obs.registry.counter_labeled("node_submits_total", &[("node", &node_label)]);
            let trace = obs.trace.clone();
            std::thread::spawn(move || {
                let quorums = Arc::new(Majority::new(n));
                let mut node = VsNode::new(id, proto, TimedVsToTo::new(id, &p0, quorums));
                let mut fx: CollectedEffects<Wire, ImplEvent> = CollectedEffects::new(0);
                let mut timers: Vec<(Time, u64)> = Vec::new();
                fx.set_now(clock.now_ms());
                node.on_start(&mut fx.ctx());
                loop {
                    // Flush effects. Emits are recorded *before* sends go
                    // out so that, in the merged global order, this node's
                    // gpsnd precedes any peer's gprcv of the same message.
                    for e in std::mem::take(&mut fx.emits) {
                        match &e {
                            ImplEvent::Brcv { src, a, .. } => {
                                delivered
                                    .lock()
                                    .expect("no panicking holder")
                                    .push((*src, a.clone()));
                                transport.push_delivery(*src, a);
                                deliveries_ctr.inc();
                                trace.record(EventKind::Brcv {
                                    node: id.0,
                                    src: src.0,
                                    value: a.as_u64().unwrap_or(0),
                                });
                            }
                            ImplEvent::NewView { v, .. } => {
                                views.lock().expect("no panicking holder").push(v.clone());
                                views_ctr.inc();
                                trace.record(EventKind::ViewChange {
                                    node: id.0,
                                    epoch: v.id.epoch,
                                    size: v.set.len() as u32,
                                });
                            }
                            ImplEvent::Bcast { a, .. } => {
                                submits_ctr.inc();
                                trace.record(EventKind::Bcast {
                                    node: id.0,
                                    value: a.as_u64().unwrap_or(0),
                                });
                            }
                            _ => {}
                        }
                        let stamp = Recorded {
                            time: clock.now_ms(),
                            seq: clock.next_seq(),
                            event: TraceEvent::App(e),
                        };
                        recorded.lock().expect("no panicking holder").push(stamp);
                    }
                    for (to, wire) in fx.take_sends() {
                        transport.send(to, wire);
                    }
                    for (delay, kind) in std::mem::take(&mut fx.timers) {
                        timers.push((clock.now_ms() + delay, kind));
                    }
                    // Wait for the next event or timer.
                    timers.sort_unstable();
                    let timeout = timers
                        .first()
                        .map(|(due, _)| Duration::from_millis(due.saturating_sub(clock.now_ms())))
                        .unwrap_or(Duration::from_millis(20));
                    match events_rx.recv_timeout(timeout) {
                        Ok(Incoming::Stop) => return,
                        Ok(Incoming::Wire { from, wire }) => {
                            fx.set_now(clock.now_ms());
                            node.on_message(from, wire, &mut fx.ctx());
                        }
                        Ok(Incoming::Submit { a }) => {
                            fx.set_now(clock.now_ms());
                            node.on_input(a, &mut fx.ctx());
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            let now = clock.now_ms();
                            fx.set_now(now);
                            let due: Vec<u64> =
                                timers.iter().filter(|(d, _)| *d <= now).map(|(_, k)| *k).collect();
                            timers.retain(|(d, _)| *d > now);
                            for kind in due {
                                node.on_timer(kind, &mut fx.ctx());
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            })
        };

        Ok(NetNode {
            id,
            transport,
            events_tx,
            clock,
            recorded,
            delivered,
            views,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// This node's identifier.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The transport endpoint (for severing links, counters, the bound
    /// address).
    pub fn transport(&self) -> &Arc<Transport> {
        &self.transport
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Submits a client value locally (same path a TCP client's `Submit`
    /// frame takes).
    pub fn submit(&self, a: Value) {
        let _ = self.events_tx.send(Incoming::Submit { a });
    }

    /// What this node has delivered to its client so far.
    pub fn delivered(&self) -> Vec<(ProcId, Value)> {
        self.delivered.lock().expect("no panicking holder").clone()
    }

    /// Every view this node has installed, in order.
    pub fn views(&self) -> Vec<View> {
        self.views.lock().expect("no panicking holder").clone()
    }

    /// A snapshot of this node's recorded (stamped) trace events.
    pub fn recorded(&self) -> Vec<Recorded> {
        self.recorded.lock().expect("no panicking holder").clone()
    }

    /// Stops the node loop and the transport; returns the final recording.
    pub fn stop(&self) -> Vec<Recorded> {
        let _ = self.events_tx.send(Incoming::Stop);
        if let Some(h) = self.handle.lock().expect("no panicking holder").take() {
            let _ = h.join();
        }
        self.transport.stop();
        self.recorded.lock().expect("no panicking holder").clone()
    }
}
