//! The timed `VStoTO'` layer (Section 7): the verified `VStoTO_p`
//! automaton driven eagerly over the implemented VS service.

use gcs_core::msg::AppMsg;
use gcs_core::vstoto::VsToToProc;
use gcs_model::{ProcId, QuorumSystem, Value, View};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A client of the VS service, plugged into a [`crate::VsNode`].
///
/// Handlers receive VS events and may return messages to `gpsnd` (the
/// node multicasts them in the current view via the token) and values to
/// deliver to the TO client (`brcv`).
pub trait VsClient {
    /// A new view was installed.
    fn on_newview(&mut self, v: &View, effects: &mut ClientEffects);
    /// A group message was delivered.
    fn on_gprcv(&mut self, src: ProcId, m: &AppMsg, effects: &mut ClientEffects);
    /// A group message became safe.
    fn on_safe(&mut self, src: ProcId, m: &AppMsg, effects: &mut ClientEffects);
    /// The local TO client submitted a value.
    fn on_input(&mut self, a: Value, effects: &mut ClientEffects);
}

/// Effects a [`VsClient`] hands back to its node.
#[derive(Default, Debug)]
pub struct ClientEffects {
    /// Messages to `gpsnd` in the current view, in order.
    pub gpsnd: Vec<AppMsg>,
    /// Values to deliver to the TO client, in order, with their origins.
    pub brcv: Vec<(ProcId, Value)>,
}

/// The timed `VStoTO'_p`: the exact [`VsToToProc`] state machine of
/// `gcs-core`, with its locally controlled actions (`label`, `gpsnd`,
/// `confirm`, `brcv`) performed immediately whenever enabled — the "good
/// processor" discipline of Section 7. Processor crashes need no special
/// handling here: the network simulator freezes the whole node, which
/// models a `bad` status, and replays its events on recovery. The layer
/// is `Clone` so crash/recovery harnesses can persist it as part of a
/// node's [`crate::StableState`].
#[derive(Clone)]
pub struct TimedVsToTo {
    proc: VsToToProc,
    delivered: Vec<(ProcId, Value)>,
}

impl TimedVsToTo {
    /// Creates the layer for processor `id`.
    pub fn new(id: ProcId, p0: &BTreeSet<ProcId>, quorums: Arc<dyn QuorumSystem>) -> Self {
        TimedVsToTo { proc: VsToToProc::initial(id, p0, quorums), delivered: Vec::new() }
    }

    /// The underlying algorithm state (for inspection in tests and
    /// experiments).
    pub fn proc(&self) -> &VsToToProc {
        &self.proc
    }

    /// Everything delivered to the TO client at this location, in order.
    pub fn delivered(&self) -> &[(ProcId, Value)] {
        &self.delivered
    }

    /// Performs every enabled locally controlled action until quiescent.
    ///
    /// `label`/`gpsnd` run through the fused
    /// [`VsToToProc::drain_label_gpsnd`] and `confirm`/`brcv` through
    /// [`VsToToProc::drain_confirm_brcv`] — one map walk per message
    /// instead of separate enabledness probes and effects — because this
    /// loop runs once per received and once per safe message at ring
    /// throughput.
    fn pump(&mut self, effects: &mut ClientEffects) {
        let mut fresh: Vec<(ProcId, Value)> = Vec::new();
        loop {
            let mut progressed = self.proc.drain_label_gpsnd(&mut effects.gpsnd);
            fresh.clear();
            if self.proc.drain_confirm_brcv(&mut fresh) {
                for (src, a) in fresh.drain(..) {
                    self.delivered.push((src, a.clone()));
                    effects.brcv.push((src, a));
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }
}

impl VsClient for TimedVsToTo {
    fn on_newview(&mut self, v: &View, effects: &mut ClientEffects) {
        self.proc.newview(v.clone());
        self.pump(effects);
    }

    fn on_gprcv(&mut self, src: ProcId, m: &AppMsg, effects: &mut ClientEffects) {
        let out = self.proc.gprcv(src, m);
        // A steady-state `Val` receipt cannot enable any locally
        // controlled action: `label`/`gpsnd` depend only on the local
        // client queues, `confirm` needs the freshly appended label to
        // already be safe (the VS service indicates safe only after
        // receipt, so it cannot be), and `brcv` can only have been
        // waiting on this content if a recovery order ran ahead of it
        // (`nextreport < nextconfirm`). Skipping the no-op pump here
        // removes a map probe from every receipt on the ring's hot path.
        if matches!(m, AppMsg::Summary(_))
            || out.established
            || self.proc.nextreport < self.proc.nextconfirm
        {
            self.pump(effects);
        }
    }

    fn on_safe(&mut self, src: ProcId, m: &AppMsg, effects: &mut ClientEffects) {
        self.proc.safe(src, m);
        self.pump(effects);
    }

    fn on_input(&mut self, a: Value, effects: &mut ClientEffects) {
        self.proc.bcast(a);
        self.pump(effects);
    }
}

/// A trivial VS client used to exercise the VS service alone: it sends
/// each client value as-is (labelled with a dummy label is unnecessary —
/// it wraps values in summaries? no: it sends nothing) and records what
/// it receives. Used by VS-level tests and experiments that do not need
/// the TO layer.
#[derive(Default)]
pub struct EchoClient {
    /// Messages received, with sender.
    pub received: Vec<(ProcId, AppMsg)>,
    /// Messages reported safe, with sender.
    pub safe: Vec<(ProcId, AppMsg)>,
    /// Views installed.
    pub views: Vec<View>,
    counter: u64,
    id: u32,
}

impl EchoClient {
    /// Creates an echo client; `id` seeds label uniqueness.
    pub fn new(id: u32) -> Self {
        EchoClient { id, ..Default::default() }
    }
}

impl VsClient for EchoClient {
    fn on_newview(&mut self, v: &View, _effects: &mut ClientEffects) {
        self.views.push(v.clone());
    }

    fn on_gprcv(&mut self, src: ProcId, m: &AppMsg, _effects: &mut ClientEffects) {
        self.received.push((src, m.clone()));
    }

    fn on_safe(&mut self, src: ProcId, m: &AppMsg, _effects: &mut ClientEffects) {
        self.safe.push((src, m.clone()));
    }

    fn on_input(&mut self, a: Value, effects: &mut ClientEffects) {
        // Send the raw value in a ⟨label, value⟩ message with a synthetic
        // label (view id is irrelevant to the VS service itself).
        self.counter += 1;
        let l = gcs_model::Label::new(
            gcs_model::ViewId::new(u64::MAX, ProcId(self.id)),
            self.counter,
            ProcId(self.id),
        );
        effects.gpsnd.push(AppMsg::Val(l, a));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::Majority;

    #[test]
    fn solo_group_pumps_to_delivery() {
        // One processor, quorum of one: a submitted value must come back
        // once VS loops the message and reports it safe.
        let p0: BTreeSet<ProcId> = [ProcId(0)].into();
        let mut layer = TimedVsToTo::new(ProcId(0), &p0, Arc::new(Majority::new(1)));
        let mut eff = ClientEffects::default();
        layer.on_input(Value::from_u64(9), &mut eff);
        assert_eq!(eff.gpsnd.len(), 1, "label+gpsnd must happen eagerly");
        let m = eff.gpsnd.pop().unwrap();
        let mut eff = ClientEffects::default();
        layer.on_gprcv(ProcId(0), &m, &mut eff);
        assert!(eff.brcv.is_empty(), "not confirmed before safe");
        let mut eff = ClientEffects::default();
        layer.on_safe(ProcId(0), &m, &mut eff);
        assert_eq!(eff.brcv, vec![(ProcId(0), Value::from_u64(9))]);
        assert_eq!(layer.delivered().len(), 1);
    }

    #[test]
    fn newview_triggers_summary_send() {
        let p0 = ProcId::range(2);
        let mut layer = TimedVsToTo::new(ProcId(0), &p0, Arc::new(Majority::new(2)));
        let mut eff = ClientEffects::default();
        let v = View::new(gcs_model::ViewId::new(1, ProcId(0)), p0);
        layer.on_newview(&v, &mut eff);
        assert_eq!(eff.gpsnd.len(), 1);
        assert!(matches!(eff.gpsnd[0], AppMsg::Summary(_)));
    }
}
