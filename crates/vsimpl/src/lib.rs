//! An implementation of the VS service (Section 8) and the timed `VStoTO`
//! stack providing totally ordered broadcast end to end, over the
//! discrete-event network simulator of `gcs-netsim`.
//!
//! The implementation follows the paper's sketch:
//!
//! - **Membership** ([`node`]) is the 3-round protocol of Cristian and
//!   Schmuck: a processor that detects trouble (token loss, or contact
//!   from outside its view) broadcasts a *call for participation* with a
//!   fresh view identifier; processors reply with *accept* unless they
//!   have accepted a higher identifier; after 2δ the initiator announces
//!   the membership (*join*), and members install the view. A one-round
//!   variant (footnote 7 ablation) skips the call/accept exchange and
//!   forms the view from recently heard-from processors.
//! - **Ordered delivery and safe indications** ride a **token** that a
//!   deterministically chosen leader (the least member) launches every π:
//!   each member appends its buffered messages, delivers the prefix it
//!   has not yet delivered, and updates its delivered count in the token;
//!   a message is *safe* once every member's recorded count passes it.
//! - **The `VStoTO` layer** ([`timed_vstoto`]) is the *same*
//!   [`gcs_core::vstoto::VsToToProc`] state machine that is model-checked
//!   against `TO-machine`; here its locally controlled actions are
//!   performed eagerly, which is exactly the timed discipline of
//!   Section 7 ("a good processor takes any enabled step immediately").
//!
//! The analytical bounds of Section 8, for a stabilized group *Q* of size
//! *n*, are `b = 9δ + max{π + (n+3)δ, μ}` and `d = 2π + nδ`
//! ([`bounds`]); experiments E2/E4 measure the simulated stack against
//! them.
//!
//! [`service`] assembles the full stack and returns recorded timed traces
//! in the three shapes the checkers of `gcs-core` consume: raw `VS`
//! actions (for the Lemma 4.2 cause checker), `VsObs` (for
//! `VS-property`), and `ToObs` (for `TO-property` and `TO-machine` trace
//! conformance).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod detector;
pub mod figure11;
pub mod node;
pub mod sequencer;
pub mod service;
pub mod stats;
pub mod threaded;
pub mod timed_vstoto;
pub mod wire;

pub use detector::{
    AccrualConfig, AccrualEstimator, AdaptiveDetector, DetectorBounds, DetectorPolicy,
};
pub use figure11::{check_figure11, Figure11Params, Figure11Report};
pub use node::{MembershipMode, ProtoConfig, StableState, VsNode};
pub use sequencer::{SeqWire, SequencerNode};
pub use service::{RunOutcome, Stack, StackConfig};
pub use stats::{stack_stats, TraceStats};
pub use threaded::{ThreadedConfig, ThreadedStack};
pub use timed_vstoto::TimedVsToTo;
pub use wire::{ImplEvent, Token, TokenMsg, Wire};

use gcs_model::Time;

/// The analytical bounds of Section 8 for the token-ring implementation.
///
/// For a stabilized set of `n` processors with channel delay `delta`,
/// token period `pi` (which must exceed `n·delta`) and merge-probe period
/// `mu`:
///
/// - stabilization bound `b = 9δ + max{π + (n+3)δ, μ}`;
/// - delivery bound `d = 2π + nδ`.
pub mod bounds {
    use super::Time;

    /// The stabilization bound *b* of Section 8.
    pub fn b(n: usize, delta: Time, pi: Time, mu: Time) -> Time {
        9 * delta + (pi + (n as Time + 3) * delta).max(mu)
    }

    /// The safe-delivery bound *d* of Section 8.
    pub fn d(n: usize, delta: Time, pi: Time) -> Time {
        2 * pi + n as Time * delta
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn bounds_match_the_paper_formulas() {
            // n = 3, δ = 5, π = 20, μ = 40:
            // b = 45 + max(20 + 30, 40) = 95; d = 40 + 15 = 55.
            assert_eq!(super::b(3, 5, 20, 40), 95);
            assert_eq!(super::d(3, 5, 20), 55);
        }

        #[test]
        fn mu_dominates_when_large() {
            // b = 9δ + μ when μ > π + (n+3)δ.
            assert_eq!(super::b(3, 5, 20, 1000), 45 + 1000);
        }
    }
}
