//! A real-time threaded runtime for the VS/TO stack: each protocol node
//! runs on its own OS thread, messages travel over crossbeam channels
//! through a router that applies per-link delays and failure statuses,
//! and timers fire against the wall clock.
//!
//! This hosts the *same* [`VsNode`]`<`[`TimedVsToTo`]`>` state machines as
//! the deterministic simulator — the runtime only replaces the event
//! source, exactly the "mapping of the abstract algorithm to the target
//! platform" the paper anticipates (Section 1). Wall-clock execution is
//! not deterministic, so tests against this runtime assert safety (which
//! must hold unconditionally — the recorded traces go through the same
//! checkers) and eventual delivery, not exact timings.
//!
//! Time unit: one tick = one millisecond.

use crate::detector::DetectorPolicy;
use crate::node::{ProtoConfig, VsNode};
use crate::timed_vstoto::TimedVsToTo;
use crate::wire::{ImplEvent, Wire};
use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender};
use gcs_ioa::TimedTrace;
use gcs_model::{FailureMap, Majority, ProcId, Status, Subject, Time, Value};
use gcs_netsim::{CollectedEffects, Process, TraceEvent};
use parking_lot::{Mutex, RwLock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum NodeEvent {
    Msg { from: ProcId, wire: Wire },
    Input(Value),
    Stop,
}

struct RouterPacket {
    due: Time,
    seq: u64,
    from: ProcId,
    to: ProcId,
    wire: Wire,
}

impl PartialEq for RouterPacket {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for RouterPacket {}
impl PartialOrd for RouterPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RouterPacket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Configuration of the threaded runtime.
#[derive(Clone)]
pub struct ThreadedConfig {
    /// Number of nodes.
    pub n: u32,
    /// Maximum link delay in milliseconds (the δ of the protocol).
    pub delta_ms: Time,
    /// Token period π in milliseconds.
    pub pi_ms: Time,
    /// Probe period μ in milliseconds.
    pub mu_ms: Time,
    /// Seed for link-delay randomness.
    pub seed: u64,
}

impl ThreadedConfig {
    /// A small-scale default suitable for tests: δ = 4 ms, π = 2nδ,
    /// μ = 4nδ.
    pub fn small(n: u32, seed: u64) -> Self {
        let delta = 4;
        ThreadedConfig {
            n,
            delta_ms: delta,
            pi_ms: 2 * n as Time * delta,
            mu_ms: 4 * n as Time * delta,
            seed,
        }
    }
}

/// Per-node delivery logs shared between the node threads and the stack
/// handle.
type DeliveredLog = Arc<Mutex<Vec<Vec<(ProcId, Value)>>>>;

/// A running threaded stack: `n` protocol nodes on their own threads, a
/// router thread applying link delays and failure statuses, and a shared
/// recorded trace.
pub struct ThreadedStack {
    inputs: Vec<Sender<NodeEvent>>,
    router_tx: Sender<Option<RouterPacket>>,
    failures: Arc<RwLock<FailureMap>>,
    trace: Arc<Mutex<TimedTrace<TraceEvent<ImplEvent>>>>,
    delivered: DeliveredLog,
    handles: Vec<JoinHandle<()>>,
    epoch: Instant,
    seq: Arc<Mutex<u64>>,
    n: u32,
}

impl ThreadedStack {
    /// Spawns the nodes and the router.
    pub fn start(config: ThreadedConfig) -> Self {
        let n = config.n;
        let procs = ProcId::range(n);
        let proto = ProtoConfig {
            procs: procs.clone(),
            p0: procs.clone(),
            delta: config.delta_ms,
            pi: config.pi_ms,
            mu: config.mu_ms,
            mode: crate::node::MembershipMode::ThreeRound,
            safe_delivery: false,
            pipeline: 4,
            detector: DetectorPolicy::Fixed,
        };
        // gcs-lint: allow(determinism, reason = "the threaded runtime is the intentionally wall-clock, nondeterministic harness; digest-reproducible runs go through gcs-netsim/gcs-sim instead")
        let epoch = Instant::now();
        let failures = Arc::new(RwLock::new(FailureMap::all_good()));
        let trace = Arc::new(Mutex::new(TimedTrace::new()));
        let delivered = Arc::new(Mutex::new(vec![Vec::new(); n as usize]));
        let seq = Arc::new(Mutex::new(0u64));

        // Node channels.
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..n {
            let (tx, rx) = unbounded::<NodeEvent>();
            senders.push(tx);
            receivers.push(rx);
        }
        // Router channel: None = shutdown.
        let (router_tx, router_rx) = bounded::<Option<RouterPacket>>(1024);

        let mut handles = Vec::new();
        // Router thread.
        {
            let failures = failures.clone();
            let senders = senders.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
            let delta = config.delta_ms.max(1);
            handles.push(std::thread::spawn(move || {
                let mut heap: BinaryHeap<RouterPacket> = BinaryHeap::new();
                loop {
                    let now = epoch.elapsed().as_millis() as Time;
                    let timeout = heap
                        .peek()
                        .map(|p| Duration::from_millis(p.due.saturating_sub(now)))
                        .unwrap_or(Duration::from_millis(50));
                    match router_rx.recv_timeout(timeout) {
                        Ok(Some(mut pkt)) => {
                            let status = if pkt.from == pkt.to {
                                Status::Good
                            } else {
                                failures.read().link(pkt.from, pkt.to)
                            };
                            match status {
                                Status::Bad => continue,
                                Status::Ugly if rng.gen_bool(0.3) => continue,
                                _ => {}
                            }
                            let now = epoch.elapsed().as_millis() as Time;
                            pkt.due = now + rng.gen_range(1..=delta);
                            heap.push(pkt);
                        }
                        Ok(None) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    let now = epoch.elapsed().as_millis() as Time;
                    while heap.peek().is_some_and(|p| p.due <= now) {
                        let pkt = heap.pop().expect("peeked");
                        let _ = senders[pkt.to.index()]
                            .send(NodeEvent::Msg { from: pkt.from, wire: pkt.wire });
                    }
                }
            }));
        }

        // Node threads.
        for (i, rx) in receivers.into_iter().enumerate() {
            let id = ProcId(i as u32);
            let proto = proto.clone();
            let p0 = proto.p0.clone();
            let router = router_tx.clone();
            let trace = trace.clone();
            let delivered = delivered.clone();
            let failures = failures.clone();
            let seq = seq.clone();
            let quorums = Arc::new(Majority::new(n as usize));
            handles.push(std::thread::spawn(move || {
                let mut node = VsNode::new(id, proto, TimedVsToTo::new(id, &p0, quorums));
                let mut fx: CollectedEffects<Wire, ImplEvent> = CollectedEffects::new(0);
                let mut timers: Vec<(Time, u64)> = Vec::new();
                let now_ms = || epoch.elapsed().as_millis() as Time;
                fx.set_now(now_ms());
                node.on_start(&mut fx.ctx());
                loop {
                    // Flush effects: sends to the router, timers locally,
                    // emits (and deliveries) into the shared records.
                    for (to, wire) in fx.take_sends() {
                        let mut s = seq.lock();
                        *s += 1;
                        let pkt = RouterPacket { due: 0, seq: *s, from: id, to, wire };
                        drop(s);
                        if router.send(Some(pkt)).is_err() {
                            return;
                        }
                    }
                    for (delay, kind) in std::mem::take(&mut fx.timers) {
                        timers.push((now_ms() + delay, kind));
                    }
                    for e in std::mem::take(&mut fx.emits) {
                        if let ImplEvent::Brcv { src, a, .. } = &e {
                            delivered.lock()[id.index()].push((*src, a.clone()));
                        }
                        // The shared trace requires nondecreasing times;
                        // threads race, so clamp to the recorded maximum.
                        let mut t = trace.lock();
                        let at = now_ms().max(t.last_time());
                        t.push(at, TraceEvent::App(e));
                    }
                    // Wait for the next event or timer.
                    timers.sort_unstable();
                    let timeout = timers
                        .first()
                        .map(|(due, _)| Duration::from_millis(due.saturating_sub(now_ms())))
                        .unwrap_or(Duration::from_millis(20));
                    // A "bad" node sleeps instead of processing (frozen).
                    if failures.read().loc(id) == Status::Bad {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    match rx.recv_timeout(timeout) {
                        Ok(NodeEvent::Stop) => return,
                        Ok(NodeEvent::Msg { from, wire }) => {
                            fx.set_now(now_ms());
                            node.on_message(from, wire, &mut fx.ctx());
                        }
                        Ok(NodeEvent::Input(a)) => {
                            fx.set_now(now_ms());
                            node.on_input(a, &mut fx.ctx());
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            let now = now_ms();
                            fx.set_now(now);
                            let due: Vec<u64> =
                                timers.iter().filter(|(d, _)| *d <= now).map(|(_, k)| *k).collect();
                            timers.retain(|(d, _)| *d > now);
                            for kind in due {
                                node.on_timer(kind, &mut fx.ctx());
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }));
        }

        ThreadedStack {
            inputs: senders,
            router_tx,
            failures,
            trace,
            delivered,
            handles,
            epoch,
            seq,
            n,
        }
    }

    /// Submits a client value at `p`; the node records the `bcast` event
    /// when its handler runs.
    pub fn bcast(&self, p: ProcId, a: Value) {
        let _ = self.inputs[p.index()].send(NodeEvent::Input(a));
    }

    /// Sets the directed-link statuses both ways between `p` and `q`.
    pub fn set_pair(&self, p: ProcId, q: ProcId, status: Status) {
        let mut fm = self.failures.write();
        fm.set(Subject::Link(p, q), status);
        fm.set(Subject::Link(q, p), status);
    }

    /// Marks a processor's status (bad nodes freeze; they keep state and
    /// resume on recovery).
    pub fn set_proc(&self, p: ProcId, status: Status) {
        self.failures.write().set(Subject::Loc(p), status);
    }

    /// What each client has been delivered so far.
    pub fn delivered(&self) -> Vec<Vec<(ProcId, Value)>> {
        self.delivered.lock().clone()
    }

    /// A snapshot of the recorded trace.
    pub fn trace_snapshot(&self) -> TimedTrace<TraceEvent<ImplEvent>> {
        self.trace.lock().clone()
    }

    /// Blocks until every client has delivered at least `count` values or
    /// the deadline passes; returns whether the goal was reached.
    pub fn await_deliveries(&self, count: usize, deadline: Duration) -> bool {
        // gcs-lint: allow(determinism, reason = "wall-clock deadline in the intentionally nondeterministic threaded harness; not on any digest path")
        let start = Instant::now();
        while start.elapsed() < deadline {
            if self.delivered.lock().iter().all(|d| d.len() >= count) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    /// Number of nodes.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Milliseconds since the stack started (the trace time base).
    pub fn uptime_ms(&self) -> Time {
        self.epoch.elapsed().as_millis() as Time
    }

    /// Total packets routed so far.
    pub fn packets_routed(&self) -> u64 {
        *self.seq.lock()
    }

    /// Stops all threads and returns the final recorded trace.
    pub fn shutdown(self) -> TimedTrace<TraceEvent<ImplEvent>> {
        for tx in &self.inputs {
            let _ = tx.send(NodeEvent::Stop);
        }
        let _ = self.router_tx.send(None);
        for h in self.handles {
            let _ = h.join();
        }
        Arc::try_unwrap(self.trace).map(|m| m.into_inner()).unwrap_or_else(|arc| arc.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::cause::check_trace;
    use gcs_core::to_trace::check_to_trace;

    #[test]
    fn threaded_stack_delivers_one_total_order() {
        let stack = ThreadedStack::start(ThreadedConfig::small(3, 7));
        for i in 0..6u64 {
            stack.bcast(ProcId((i % 3) as u32), Value::from_u64(i + 1));
            std::thread::sleep(Duration::from_millis(3));
        }
        assert!(
            stack.await_deliveries(6, Duration::from_secs(10)),
            "deliveries timed out: {:?}",
            stack.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
        );
        let delivered = stack.delivered();
        let trace = stack.shutdown();
        for d in &delivered[1..] {
            assert_eq!(&delivered[0][..6], &d[..6], "orders diverge");
        }
        // The wall-clock trace passes the same specification checkers.
        let to = check_to_trace(&crate::convert::to_obs(&trace).untimed());
        assert!(to.ok(), "{:?}", to.violations.first());
        let cause = check_trace(&crate::convert::vs_actions(&trace), &ProcId::range(3));
        assert!(cause.ok(), "{:?}", cause.violations.first());
    }

    #[test]
    fn threaded_partition_stalls_minority_then_heals() {
        let stack = ThreadedStack::start(ThreadedConfig::small(3, 11));
        // Give the ring a moment, then cut p2 off.
        std::thread::sleep(Duration::from_millis(100));
        stack.set_pair(ProcId(0), ProcId(2), Status::Bad);
        stack.set_pair(ProcId(1), ProcId(2), Status::Bad);
        std::thread::sleep(Duration::from_millis(300));
        for i in 0..4u64 {
            stack.bcast(ProcId((i % 2) as u32), Value::from_u64(i + 1));
        }
        // The majority {p0,p1} must deliver; p2 must not (it is alone).
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(10) {
            let d = stack.delivered();
            if d[0].len() >= 4 && d[1].len() >= 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let d = stack.delivered();
        assert!(d[0].len() >= 4 && d[1].len() >= 4, "majority stalled: {d:?}");
        assert_eq!(d[2].len(), 0, "isolated minority must not deliver");
        // Heal: p2 catches up through the state exchange.
        stack.set_pair(ProcId(0), ProcId(2), Status::Good);
        stack.set_pair(ProcId(1), ProcId(2), Status::Good);
        assert!(
            stack.await_deliveries(4, Duration::from_secs(15)),
            "p2 failed to catch up: {:?}",
            stack.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
        );
        let trace = stack.shutdown();
        let to = check_to_trace(&crate::convert::to_obs(&trace).untimed());
        assert!(to.ok(), "{:?}", to.violations.first());
    }
}
