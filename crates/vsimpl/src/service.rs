//! Assembly of the full TO service stack (Figure 1): clients → `VStoTO`
//! layer → VS service (membership + token ring) → simulated network.

use crate::detector::DetectorPolicy;
use crate::node::{MembershipMode, ProtoConfig, VsNode};
use crate::timed_vstoto::TimedVsToTo;
use crate::wire::ImplEvent;
use gcs_core::properties::{ToObs, VsObs};
use gcs_core::vs_machine::VsAction;
use gcs_core::AppMsg;
use gcs_ioa::TimedTrace;
use gcs_model::failure::FailureScript;
use gcs_model::{Majority, ProcId, QuorumSystem, Time, Value};
use gcs_netsim::{Engine, NetConfig, TraceEvent};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of a full stack simulation.
#[derive(Clone)]
pub struct StackConfig {
    /// Number of processors (the ambient set is `{p0..p(n-1)}`).
    pub n: u32,
    /// The initial membership *P₀* (defaults to everyone).
    pub p0: BTreeSet<ProcId>,
    /// The quorum system (defaults to majority of *n*).
    pub quorums: Arc<dyn QuorumSystem>,
    /// Good-channel delay δ.
    pub delta: Time,
    /// Token period π.
    pub pi: Time,
    /// Probe period μ.
    pub mu: Time,
    /// Membership protocol variant.
    pub mode: MembershipMode,
    /// Totem-style safe delivery (ablation E9).
    pub safe_delivery: bool,
    /// RNG seed for the network simulation.
    pub seed: u64,
}

impl StackConfig {
    /// A standard configuration: everyone in *P₀*, majority quorums,
    /// `π = 2nδ`, `μ = 4nδ`.
    pub fn standard(n: u32, delta: Time, seed: u64) -> Self {
        StackConfig {
            n,
            p0: ProcId::range(n),
            quorums: Arc::new(Majority::new(n as usize)),
            delta,
            pi: 2 * n as Time * delta,
            mu: 4 * n as Time * delta,
            mode: MembershipMode::ThreeRound,
            safe_delivery: false,
            seed,
        }
    }
}

/// A built stack: the discrete-event engine hosting one
/// [`VsNode`]`<`[`TimedVsToTo`]`>` per processor.
pub struct Stack {
    engine: Engine<VsNode<TimedVsToTo>>,
    config: StackConfig,
    next_value: u64,
}

impl Stack {
    /// Builds the stack.
    pub fn new(config: StackConfig) -> Self {
        let procs = ProcId::range(config.n);
        let proto = ProtoConfig {
            procs: procs.clone(),
            p0: config.p0.clone(),
            delta: config.delta,
            pi: config.pi,
            mu: config.mu,
            mode: config.mode,
            safe_delivery: config.safe_delivery,
            pipeline: 4,
            detector: DetectorPolicy::Fixed,
        };
        let nodes = procs.iter().map(|&p| {
            VsNode::new(p, proto.clone(), TimedVsToTo::new(p, &config.p0, config.quorums.clone()))
        });
        let net = NetConfig { delta_min: 1, delta: config.delta, ..NetConfig::default() };
        let engine = Engine::new(nodes, net, config.seed);
        Stack { engine, config, next_value: 0 }
    }

    /// The configuration this stack was built with.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Loads a failure script.
    pub fn load_failures(&mut self, script: &FailureScript) {
        self.engine.load_failures(script);
    }

    /// Schedules a client broadcast of a fresh unique value at `time` on
    /// processor `p`; returns the value.
    pub fn schedule_bcast(&mut self, time: Time, p: ProcId) -> Value {
        self.next_value += 1;
        let a = Value::from_u64(self.next_value);
        self.engine.schedule_input(time, p, a.clone());
        a
    }

    /// Schedules a specific value (caller must keep values unique for the
    /// trace checkers).
    pub fn schedule_value(&mut self, time: Time, p: ProcId, a: Value) {
        self.engine.schedule_input(time, p, a);
    }

    /// Runs the simulation to `t_end`.
    pub fn run_until(&mut self, t_end: Time) -> usize {
        self.engine.run_until(t_end)
    }

    /// The raw recorded trace.
    pub fn trace(&self) -> &TimedTrace<TraceEvent<ImplEvent>> {
        self.engine.trace()
    }

    /// The untimed `VS` action sequence (for the cause checker).
    pub fn vs_actions(&self) -> Vec<VsAction<AppMsg>> {
        crate::convert::vs_actions(self.trace())
    }

    /// The timed `VsObs` trace (for `VS-property`).
    pub fn vs_obs(&self) -> TimedTrace<VsObs> {
        crate::convert::vs_obs(self.trace())
    }

    /// The timed `ToObs` trace (for `TO-property` and trace conformance).
    pub fn to_obs(&self) -> TimedTrace<ToObs> {
        crate::convert::to_obs(self.trace())
    }

    /// What the TO client at `p` has been delivered, in order.
    pub fn delivered(&self, p: ProcId) -> &[(ProcId, Value)] {
        self.engine.process(p).client().delivered()
    }

    /// The current view at `p`, if any.
    pub fn view_of(&self, p: ProcId) -> Option<&gcs_model::View> {
        self.engine.process(p).current_view()
    }

    /// Direct access to a node.
    pub fn node(&self, p: ProcId) -> &VsNode<TimedVsToTo> {
        self.engine.process(p)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Network-level counters (packets routed/dropped, events stashed).
    pub fn net_stats(&self) -> gcs_netsim::NetStats {
        self.engine.stats()
    }
}

/// A convenience record of a completed run, used by experiments.
pub struct RunOutcome {
    /// The timed `ToObs` trace.
    pub to_obs: TimedTrace<ToObs>,
    /// The timed `VsObs` trace.
    pub vs_obs: TimedTrace<VsObs>,
    /// The untimed `VS` actions.
    pub vs_actions: Vec<VsAction<AppMsg>>,
    /// Total deliveries across all clients.
    pub total_delivered: usize,
}

impl Stack {
    /// Consumes the stack and packages its traces.
    pub fn into_outcome(self) -> RunOutcome {
        let total_delivered = (0..self.config.n).map(|i| self.delivered(ProcId(i)).len()).sum();
        RunOutcome {
            to_obs: self.to_obs(),
            vs_obs: self.vs_obs(),
            vs_actions: self.vs_actions(),
            total_delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::cause::check_trace;
    use gcs_core::to_trace::check_to_trace;

    #[test]
    fn stable_group_delivers_everything_in_order() {
        let mut stack = Stack::new(StackConfig::standard(3, 5, 42));
        for i in 0..10u32 {
            stack.schedule_bcast(50 + 10 * i as Time, ProcId(i % 3));
        }
        stack.run_until(2_000);
        // Everyone delivered all ten values, identically ordered.
        let d0 = stack.delivered(ProcId(0)).to_vec();
        assert_eq!(d0.len(), 10, "p0 delivered {} of 10", d0.len());
        for i in 1..3 {
            assert_eq!(stack.delivered(ProcId(i)), &d0[..], "divergence at p{i}");
        }
        // The TO trace is a TO-machine trace.
        let r = check_to_trace(&stack.to_obs().untimed());
        assert!(r.ok(), "{:?}", r.violations.first());
        // The VS trace satisfies Lemma 4.2.
        let r = check_trace(&stack.vs_actions(), &ProcId::range(3));
        assert!(r.ok(), "{:?}", r.violations.first());
    }

    #[test]
    fn partition_forms_separate_views_and_primary_side_progresses() {
        let mut stack = Stack::new(StackConfig::standard(5, 5, 7));
        let ambient = ProcId::range(5);
        let left = ProcId::range(3); // {0,1,2}: majority
        let right: BTreeSet<ProcId> = ambient.difference(&left).copied().collect();
        let mut script = FailureScript::new();
        script.partition(500, &[left.clone(), right.clone()], &ambient);
        stack.load_failures(&script);
        // Traffic after the partition from the majority side.
        for i in 0..5u32 {
            stack.schedule_bcast(1_000 + 50 * i as Time, ProcId(i % 3));
        }
        stack.run_until(6_000);
        // Majority side converged to a view of exactly {0,1,2} and
        // delivered the post-partition traffic.
        for p in &left {
            let v = stack.view_of(*p).expect("view installed");
            assert_eq!(v.set, left, "wrong membership at {p}: {v}");
        }
        assert_eq!(stack.delivered(ProcId(0)).len(), 5);
        // Minority side converged to {3,4} but confirmed nothing new.
        for p in &right {
            let v = stack.view_of(*p).expect("view installed");
            assert_eq!(v.set, right, "wrong membership at {p}: {v}");
        }
        // Safety held throughout.
        let r = check_to_trace(&stack.to_obs().untimed());
        assert!(r.ok(), "{:?}", r.violations.first());
        let r = check_trace(&stack.vs_actions(), &ProcId::range(5));
        assert!(r.ok(), "{:?}", r.violations.first());
    }

    #[test]
    fn merge_reconciles_minority_traffic() {
        let mut stack = Stack::new(StackConfig::standard(4, 5, 11));
        let ambient = ProcId::range(4);
        let left = ProcId::range(3);
        let right: BTreeSet<ProcId> = ambient.difference(&left).copied().collect();
        let mut script = FailureScript::new();
        script.partition(200, &[left.clone(), right.clone()], &ambient);
        script.heal(3_000, &ambient);
        stack.load_failures(&script);
        // p3 (minority, alone) submits during the partition: its value is
        // labelled but cannot be confirmed until the merge.
        stack.schedule_bcast(1_000, ProcId(3));
        stack.run_until(10_000);
        // After healing, everyone is in one view and p3's value reached
        // every client.
        for p in &ambient {
            let v = stack.view_of(*p).expect("view installed");
            assert_eq!(v.set, ambient, "post-merge membership at {p}: {v}");
        }
        for p in &ambient {
            let got = stack.delivered(*p);
            assert!(
                got.iter().any(|(src, _)| *src == ProcId(3)),
                "{p} missing the minority value after merge: {got:?}"
            );
        }
        let r = check_to_trace(&stack.to_obs().untimed());
        assert!(r.ok(), "{:?}", r.violations.first());
    }

    #[test]
    fn safe_delivery_mode_still_delivers_correctly() {
        let mut cfg = StackConfig::standard(3, 5, 21);
        cfg.safe_delivery = true;
        let mut stack = Stack::new(cfg);
        for i in 0..8u32 {
            stack.schedule_bcast(50 + 20 * i as Time, ProcId(i % 3));
        }
        stack.run_until(3_000);
        let d0 = stack.delivered(ProcId(0)).to_vec();
        assert_eq!(d0.len(), 8, "p0 delivered {} of 8", d0.len());
        for i in 1..3 {
            assert_eq!(stack.delivered(ProcId(i)), &d0[..]);
        }
        let r = check_to_trace(&stack.to_obs().untimed());
        assert!(r.ok(), "{:?}", r.violations.first());
        // The paper's point (introduction, difference #5) made concrete:
        // Totem-style safe delivery does NOT satisfy VS-machine's safe
        // semantics — a safe indication can precede delivery at other
        // members, which the Lemma 4.2 checker flags. In a stable run the
        // TO service above is still correct, but the VS contract is not met.
        let r = check_trace(&stack.vs_actions(), &ProcId::range(3));
        assert!(!r.ok(), "safe-delivery mode unexpectedly satisfied VS semantics");
        assert!(
            r.violations.iter().all(|v| v.contains("before delivery")),
            "only safe-coverage violations expected: {:?}",
            r.violations.first()
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed| {
            let mut stack = Stack::new(StackConfig::standard(3, 5, seed));
            for i in 0..5u32 {
                stack.schedule_bcast(100 + 30 * i as Time, ProcId(i % 3));
            }
            stack.run_until(2_000);
            format!("{:?}", stack.trace())
        };
        assert_eq!(run(9), run(9));
    }
}
