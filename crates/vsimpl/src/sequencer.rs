//! A fixed-sequencer totally ordered broadcast — the classic non-fault-
//! tolerant baseline for the cost comparison of experiment E14.
//!
//! The lowest processor acts as the sequencer: every submission is
//! unicast to it, it stamps a global sequence number and rebroadcasts,
//! and every processor delivers in stamp order. In a stable network this
//! is hard to beat — two message hops (≈ 2δ) of latency and `n + 1`
//! packets per value — but it provides none of what the paper's stack
//! provides: no membership, no safe indications, and a single point of
//! failure (if the sequencer's location goes bad, the service stops
//! until it recovers; there is deliberately no failover here).
//!
//! The baseline emits the same `Bcast`/`Brcv` trace events as the real
//! stack, so the `TO-machine` trace checker applies to it unchanged.

use crate::wire::ImplEvent;
use gcs_model::{ProcId, Value};
use gcs_netsim::{Context, Process};
use std::collections::{BTreeMap, BTreeSet};

/// A wire message of the sequencer protocol.
#[derive(Clone, PartialEq, Debug)]
pub enum SeqWire {
    /// A client value forwarded to the sequencer.
    Submit {
        /// The submitting processor.
        origin: ProcId,
        /// The value.
        a: Value,
    },
    /// A stamped value rebroadcast by the sequencer.
    Stamped {
        /// The global sequence number (1-based).
        seqno: u64,
        /// The submitting processor.
        origin: ProcId,
        /// The value.
        a: Value,
    },
}

/// One node of the fixed-sequencer baseline.
pub struct SequencerNode {
    id: ProcId,
    procs: BTreeSet<ProcId>,
    sequencer: ProcId,
    next_stamp: u64,
    next_deliver: u64,
    pending: BTreeMap<u64, (ProcId, Value)>,
    delivered: Vec<(ProcId, Value)>,
}

impl SequencerNode {
    /// Creates a node; the sequencer is the least processor of the set.
    pub fn new(id: ProcId, procs: BTreeSet<ProcId>) -> Self {
        let sequencer = *procs.iter().next().expect("nonempty system");
        SequencerNode {
            id,
            procs,
            sequencer,
            next_stamp: 1,
            next_deliver: 1,
            pending: BTreeMap::new(),
            delivered: Vec::new(),
        }
    }

    /// What this node has delivered, in order.
    pub fn delivered(&self) -> &[(ProcId, Value)] {
        &self.delivered
    }

    fn deliver_ready(&mut self, ctx: &mut Context<'_, SeqWire, ImplEvent>) {
        while let Some((origin, a)) = self.pending.remove(&self.next_deliver) {
            self.next_deliver += 1;
            self.delivered.push((origin, a.clone()));
            ctx.emit(ImplEvent::Brcv { src: origin, dst: self.id, a });
        }
    }
}

impl Process for SequencerNode {
    type Msg = SeqWire;
    type Input = Value;
    type Event = ImplEvent;

    fn id(&self) -> ProcId {
        self.id
    }

    fn on_start(&mut self, _ctx: &mut Context<'_, SeqWire, ImplEvent>) {}

    fn on_message(
        &mut self,
        _from: ProcId,
        msg: SeqWire,
        ctx: &mut Context<'_, SeqWire, ImplEvent>,
    ) {
        match msg {
            SeqWire::Submit { origin, a } => {
                debug_assert_eq!(self.id, self.sequencer, "only the sequencer stamps");
                let seqno = self.next_stamp;
                self.next_stamp += 1;
                for &q in &self.procs.clone() {
                    ctx.send(q, SeqWire::Stamped { seqno, origin, a: a.clone() });
                }
            }
            SeqWire::Stamped { seqno, origin, a } => {
                self.pending.insert(seqno, (origin, a));
                self.deliver_ready(ctx);
            }
        }
    }

    fn on_timer(&mut self, _kind: u64, _ctx: &mut Context<'_, SeqWire, ImplEvent>) {}

    fn on_input(&mut self, a: Value, ctx: &mut Context<'_, SeqWire, ImplEvent>) {
        ctx.emit(ImplEvent::Bcast { p: self.id, a: a.clone() });
        ctx.send(self.sequencer, SeqWire::Submit { origin: self.id, a });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::to_trace::check_to_trace;
    use gcs_netsim::{Engine, NetConfig};

    #[test]
    fn sequencer_orders_and_delivers_everywhere() {
        let procs = ProcId::range(3);
        let nodes = procs.iter().map(|&p| SequencerNode::new(p, procs.clone()));
        let mut engine = Engine::new(nodes, NetConfig::default(), 5);
        for i in 0..8u64 {
            engine.schedule_input(10 + i * 7, ProcId((i % 3) as u32), Value::from_u64(i + 1));
        }
        engine.run_until(2_000);
        let d0 = engine.process(ProcId(0)).delivered().to_vec();
        assert_eq!(d0.len(), 8);
        for i in 1..3 {
            assert_eq!(engine.process(ProcId(i)).delivered(), &d0[..]);
        }
        let to = check_to_trace(&crate::convert::to_obs(engine.trace()).untimed());
        assert!(to.ok(), "{:?}", to.violations.first());
    }

    #[test]
    fn sequencer_is_a_single_point_of_failure() {
        use gcs_model::failure::FailureScript;
        let procs = ProcId::range(3);
        let nodes = procs.iter().map(|&p| SequencerNode::new(p, procs.clone()));
        let mut engine = Engine::new(nodes, NetConfig::default(), 5);
        let mut script = FailureScript::new();
        script.crash(5, ProcId(0)); // the sequencer
        engine.load_failures(&script);
        engine.schedule_input(10, ProcId(1), Value::from_u64(1));
        engine.run_until(2_000);
        // Nothing delivers anywhere — the baseline has no failover.
        for i in 0..3 {
            assert!(engine.process(ProcId(i)).delivered().is_empty());
        }
    }
}
