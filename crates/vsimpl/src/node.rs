//! The VS service node: Cristian–Schmuck membership plus the token ring
//! (Section 8), as a [`gcs_netsim::Process`].

use crate::timed_vstoto::{ClientEffects, VsClient};
use crate::wire::{ImplEvent, Token, TokenMsg, Wire};
use gcs_model::{ProcId, Time, Value, View, ViewId};
use gcs_netsim::{Context, Process};
use std::collections::{BTreeMap, BTreeSet};

/// Which membership protocol to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MembershipMode {
    /// The 3-round protocol of Section 8: call → accept → join.
    ThreeRound,
    /// The 1-round variant (footnote 7): the initiator announces a
    /// membership built from recently heard-from processors, with no
    /// call/accept exchange. Forms views faster but from staler
    /// information, so it stabilizes less quickly.
    OneRound,
}

/// Protocol parameters.
#[derive(Clone, Debug)]
pub struct ProtoConfig {
    /// The ambient processor set *P*.
    pub procs: BTreeSet<ProcId>,
    /// The initial membership *P₀* (these processors start in *v₀*).
    pub p0: BTreeSet<ProcId>,
    /// The (maximum) good-channel delay δ; must match the network config.
    pub delta: Time,
    /// The token launch period π (must exceed `n·δ`).
    pub pi: Time,
    /// The merge-probe period μ.
    pub mu: Time,
    /// Membership protocol variant.
    pub mode: MembershipMode,
    /// Totem-style *safe delivery* (ablation E9, cf. introduction
    /// difference #5): when true, a message is delivered to the client
    /// only once every member is known to have received it, so the
    /// `gprcv` and `safe` indications coincide; when false (the paper's
    /// VS), delivery happens as soon as the token brings the message and
    /// the safe indication follows separately.
    pub safe_delivery: bool,
}

impl ProtoConfig {
    /// A sensible configuration for `n` processors all starting in the
    /// group, with the given δ: `π = 2nδ`, `μ = 4nδ`.
    pub fn standard(n: u32, delta: Time) -> Self {
        let procs = ProcId::range(n);
        ProtoConfig {
            p0: procs.clone(),
            procs,
            delta,
            pi: 2 * n as Time * delta,
            mu: 4 * n as Time * delta,
            mode: MembershipMode::ThreeRound,
            safe_delivery: false,
        }
    }
}

// Timer kinds: low 3 bits tag, rest the install generation (the
// formation deadline timer carries the formation attempt instead).
const TAG_PROBE: u64 = 0;
const TAG_TOKEN: u64 = 1;
const TAG_LAUNCH: u64 = 2;
const TAG_FORM: u64 = 3;
const TAG_MASK: u64 = 0b111;

fn timer_kind(tag: u64, gen: u64) -> u64 {
    tag | (gen << 3)
}

/// The VS service node hosting a [`VsClient`] (usually the
/// [`crate::TimedVsToTo`] layer).
pub struct VsNode<C> {
    id: ProcId,
    cfg: ProtoConfig,
    client: C,
    // --- membership state ---
    view: Option<View>,
    /// Bumped at every install; timers carry the generation they were set
    /// in and stale ones are ignored.
    gen: u64,
    /// Highest view identifier ever seen anywhere.
    max_seen: ViewId,
    /// Highest view identifier accepted (replied to, or installed).
    accepted: ViewId,
    /// In-progress formation: proposed id and responders so far.
    forming: Option<(ViewId, BTreeSet<ProcId>)>,
    /// Bumped at every formation attempt; the formation deadline timer
    /// carries the attempt it was set for. The view generation is not
    /// enough: a superseded attempt leaves its timer pending, and if a
    /// fresh attempt starts before it fires (no install in between, so
    /// `gen` is unchanged), the stale timer would close the new
    /// attempt's accept window after ~1 ms and install a spurious
    /// near-singleton view.
    form_seq: u64,
    last_form: Option<Time>,
    /// Last time each processor was heard from (any packet).
    heard: BTreeMap<ProcId, Time>,
    // --- token state (per current view) ---
    out_buf: Vec<TokenMsg>,
    delivered_count: u64,
    received_count: u64,
    safe_count: u64,
    holding: Option<Box<Token>>,
    pending_token: Option<Box<Token>>,
    last_token: Time,
    mid_counter: u64,
}

/// The part of a node's state assumed to live on stable storage, for
/// crash/recovery: the highest view identifiers ever seen or agreed to
/// (so a recovered node never proposes or installs below something its
/// previous incarnation committed to — which would violate view
/// monotonicity), the message-identifier counter (so recovered `gpsnd`s
/// never reuse a mid), and the client layer itself (the `VStoTO` state
/// holding everything the TO client has been shown — re-delivering it
/// after a restart would violate TO's no-duplication).
///
/// Everything else — the installed view, the token, in-progress
/// formations, out-buffered messages, who was heard from when — is
/// volatile and lost in a crash; the membership protocol rebuilds it.
#[derive(Clone, Debug)]
pub struct StableState<C> {
    /// Highest view identifier ever seen anywhere.
    pub max_seen: ViewId,
    /// Highest view identifier accepted (replied to, or installed).
    pub accepted: ViewId,
    /// The message-identifier counter.
    pub mid_counter: u64,
    /// The hosted client layer (e.g. [`crate::TimedVsToTo`]).
    pub client: C,
}

impl<C: VsClient> VsNode<C> {
    /// Creates the node for processor `id` hosting `client`.
    pub fn new(id: ProcId, cfg: ProtoConfig, client: C) -> Self {
        assert!(cfg.procs.contains(&id), "{id} not in the ambient set");
        assert!(cfg.pi > cfg.procs.len() as Time * cfg.delta, "token period π must exceed n·δ");
        let in_p0 = cfg.p0.contains(&id);
        let view = in_p0.then(|| View::initial(cfg.p0.clone()));
        VsNode {
            id,
            cfg,
            client,
            view,
            gen: 0,
            max_seen: ViewId::initial(),
            accepted: ViewId::initial(),
            forming: None,
            form_seq: 0,
            last_form: None,
            heard: BTreeMap::new(),
            out_buf: Vec::new(),
            delivered_count: 0,
            received_count: 0,
            safe_count: 0,
            holding: None,
            pending_token: None,
            last_token: 0,
            mid_counter: 0,
        }
    }

    /// Snapshots the stable-storage portion of the state (see
    /// [`StableState`]). A crash may be modeled by dropping the node and
    /// later passing this snapshot to [`VsNode::recover`].
    pub fn stable_state(&self) -> StableState<C>
    where
        C: Clone,
    {
        StableState {
            max_seen: self.max_seen,
            accepted: self.accepted,
            mid_counter: self.mid_counter,
            client: self.client.clone(),
        }
    }

    /// Reconstructs a node from stable storage after a crash. The
    /// recovered node starts with **no installed view** (its previous
    /// view's volatile state — token, buffers, formation — is gone); it
    /// rejoins via the normal probe/call/join path, and because
    /// `max_seen`/`accepted` survived, every view it subsequently
    /// installs is above anything its previous incarnation committed to.
    pub fn recover(id: ProcId, cfg: ProtoConfig, stable: StableState<C>) -> Self {
        assert!(cfg.procs.contains(&id), "{id} not in the ambient set");
        assert!(cfg.pi > cfg.procs.len() as Time * cfg.delta, "token period π must exceed n·δ");
        VsNode {
            id,
            cfg,
            client: stable.client,
            view: None,
            gen: 0,
            max_seen: stable.max_seen,
            accepted: stable.accepted,
            forming: None,
            form_seq: 0,
            last_form: None,
            heard: BTreeMap::new(),
            out_buf: Vec::new(),
            delivered_count: 0,
            received_count: 0,
            safe_count: 0,
            holding: None,
            pending_token: None,
            last_token: 0,
            mid_counter: stable.mid_counter,
        }
    }

    /// The hosted client.
    pub fn client(&self) -> &C {
        &self.client
    }

    /// The currently installed view, if any.
    pub fn current_view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// A one-line rendering of the membership-protocol state, for
    /// diagnostics and experiments.
    pub fn membership_debug(&self) -> String {
        format!(
            "view={:?} accepted={} max_seen={} forming={:?} last_form={:?}",
            self.view.as_ref().map(|v| v.to_string()),
            self.accepted,
            self.max_seen,
            self.forming.as_ref().map(|(vid, r)| format!("{vid}:{r:?}")),
            self.last_form,
        )
    }

    fn current_id(&self) -> Option<ViewId> {
        self.view.as_ref().map(|v| v.id)
    }

    fn is_leader(&self) -> bool {
        self.view.as_ref().and_then(|v| v.leader()) == Some(self.id)
    }

    fn token_timeout(&self) -> Time {
        let n = self.view.as_ref().map(|v| v.size()).unwrap_or(1) as Time;
        // π between launches, up to (n+3)δ in flight, plus a per-id
        // stagger so simultaneous expiry does not cause call storms.
        self.cfg.pi + (n + 3) * self.cfg.delta + self.id.0 as Time
    }

    fn next_mid(&mut self) -> u64 {
        self.mid_counter += 1;
        ((self.id.0 as u64) << 40) | self.mid_counter
    }

    fn queue_effects(&mut self, effects: ClientEffects, ctx: &mut Context<'_, Wire, ImplEvent>) {
        for m in effects.gpsnd {
            // A send while no view is installed is ignored, matching
            // VS-machine's treatment of gpsnd at ⊥ — but the event is
            // still emitted so traces reflect the attempt.
            let mid = self.next_mid();
            ctx.emit(ImplEvent::GpSnd { p: self.id, mid, m: m.clone() });
            if self.view.is_some() {
                self.out_buf.push(TokenMsg { src: self.id, mid, msg: m });
            }
        }
        for (src, a) in effects.brcv {
            ctx.emit(ImplEvent::Brcv { src, dst: self.id, a });
        }
    }

    // ----------------------------------------------------------------
    // Membership
    // ----------------------------------------------------------------

    fn trigger_formation(&mut self, ctx: &mut Context<'_, Wire, ImplEvent>) {
        self.last_form = Some(ctx.now());
        let base =
            self.max_seen.max(self.accepted).max(self.current_id().unwrap_or_else(ViewId::initial));
        let vid = base.successor(self.id);
        self.max_seen = vid;
        match self.cfg.mode {
            MembershipMode::ThreeRound => {
                self.accepted = vid;
                self.forming = Some((vid, [self.id].into()));
                self.form_seq += 1;
                for &q in &self.cfg.procs.clone() {
                    if q != self.id {
                        ctx.send(q, Wire::Call { viewid: vid });
                    }
                }
                // Strictly more than the 2δ round trip: with the
                // deterministic simulator a call + accept can take exactly
                // 2δ, and the deadline must not tie with (and beat) the
                // last accept's delivery. Keyed by the attempt, not the
                // view generation: a timer left over from a superseded
                // attempt must not close this attempt's accept window.
                ctx.set_timer(2 * self.cfg.delta + 1, timer_kind(TAG_FORM, self.form_seq));
            }
            MembershipMode::OneRound => {
                let horizon = ctx.now().saturating_sub(2 * self.cfg.mu);
                let members: BTreeSet<ProcId> = self
                    .cfg
                    .procs
                    .iter()
                    .copied()
                    .filter(|&q| q == self.id || self.heard.get(&q).is_some_and(|&t| t >= horizon))
                    .collect();
                self.accepted = vid;
                self.install_and_announce(View::new(vid, members), ctx);
            }
        }
    }

    fn install_and_announce(&mut self, v: View, ctx: &mut Context<'_, Wire, ImplEvent>) {
        for &q in &v.set {
            if q != self.id {
                ctx.send(q, Wire::Join { view: v.clone() });
            }
        }
        self.install(v, ctx);
    }

    fn install(&mut self, v: View, ctx: &mut Context<'_, Wire, ImplEvent>) {
        debug_assert!(v.set.contains(&self.id));
        self.gen += 1;
        self.max_seen = self.max_seen.max(v.id);
        self.accepted = self.accepted.max(v.id);
        self.view = Some(v.clone());
        self.forming = None;
        self.out_buf.clear();
        self.delivered_count = 0;
        self.received_count = 0;
        self.safe_count = 0;
        self.holding = None;
        self.last_token = ctx.now();
        ctx.emit(ImplEvent::NewView { p: self.id, v: v.clone() });
        let mut effects = ClientEffects::default();
        self.client.on_newview(&v, &mut effects);
        self.queue_effects(effects, ctx);
        if self.is_leader() {
            self.holding = Some(Box::new(Token::new(&v)));
            // Launch promptly on installation, then pace by π.
            ctx.set_timer(0, timer_kind(TAG_LAUNCH, self.gen));
        }
        ctx.set_timer(self.token_timeout(), timer_kind(TAG_TOKEN, self.gen));
        // A token that raced ahead of our join can be processed now.
        if let Some(tok) = self.pending_token.take() {
            if Some(tok.view) == self.current_id() {
                self.process_token(tok, ctx, false);
            }
        }
    }

    // ----------------------------------------------------------------
    // Token
    // ----------------------------------------------------------------

    /// Appends, delivers, reports safe, and forwards the token.
    /// `relaunch` is true when the leader is launching at a π boundary
    /// (the token must go to the successor rather than be held again).
    fn process_token(
        &mut self,
        mut tok: Box<Token>,
        ctx: &mut Context<'_, Wire, ImplEvent>,
        relaunch: bool,
    ) {
        self.last_token = ctx.now();
        let view = self.view.clone().expect("token processed only inside a view");
        loop {
            let mut progressed = false;
            if !self.out_buf.is_empty() {
                tok.msgs.append(&mut self.out_buf);
                progressed = true;
            }
            // The token's per-member count records *receipt*; under safe
            // delivery the client sees a message only once it is safe, so
            // receipt and client delivery are tracked separately there.
            if self.cfg.safe_delivery {
                self.received_count = tok.msgs.len() as u64;
            } else {
                while (self.delivered_count as usize) < tok.msgs.len() {
                    let tm = tok.msgs[self.delivered_count as usize].clone();
                    self.delivered_count += 1;
                    ctx.emit(ImplEvent::GpRcv {
                        src: tm.src,
                        dst: self.id,
                        mid: tm.mid,
                        m: tm.msg.clone(),
                    });
                    let mut effects = ClientEffects::default();
                    self.client.on_gprcv(tm.src, &tm.msg, &mut effects);
                    self.queue_effects(effects, ctx);
                    progressed = true;
                }
                self.received_count = self.delivered_count;
            }
            tok.delivered.insert(self.id, self.received_count);
            let sp = tok.safe_prefix();
            if self.cfg.safe_delivery {
                // Deliver the newly safe prefix first, then report it safe.
                while self.delivered_count < sp {
                    let tm = tok.msgs[self.delivered_count as usize].clone();
                    self.delivered_count += 1;
                    ctx.emit(ImplEvent::GpRcv {
                        src: tm.src,
                        dst: self.id,
                        mid: tm.mid,
                        m: tm.msg.clone(),
                    });
                    let mut effects = ClientEffects::default();
                    self.client.on_gprcv(tm.src, &tm.msg, &mut effects);
                    self.queue_effects(effects, ctx);
                    progressed = true;
                }
            }
            while self.safe_count < sp {
                let tm = tok.msgs[self.safe_count as usize].clone();
                self.safe_count += 1;
                ctx.emit(ImplEvent::Safe {
                    src: tm.src,
                    dst: self.id,
                    mid: tm.mid,
                    m: tm.msg.clone(),
                });
                let mut effects = ClientEffects::default();
                self.client.on_safe(tm.src, &tm.msg, &mut effects);
                self.queue_effects(effects, ctx);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        // Forward. The leader paces an *idle* token at π (the paper's
        // "spacing of token creation"), but keeps a *busy* token
        // circulating continuously — otherwise end-to-end safety would
        // take ~3π instead of the d = 2π + nδ of Section 8. The token is
        // idle once everything is delivered everywhere and two further
        // clean rotations have propagated the final safe prefix to every
        // member.
        if self.is_leader() {
            let all_delivered =
                tok.safe_prefix() as usize == tok.msgs.len() && self.out_buf.is_empty();
            if all_delivered {
                tok.clean_rounds = tok.clean_rounds.saturating_add(1);
            } else {
                tok.clean_rounds = 0;
            }
            let busy = tok.clean_rounds < 2;
            let succ = view.ring_successor(self.id).expect("member of own view");
            if (relaunch || busy) && succ != self.id {
                ctx.send(succ, Wire::Token(tok));
            } else {
                self.holding = Some(tok);
            }
        } else {
            let succ = view.ring_successor(self.id).expect("member of own view");
            if succ == self.id {
                self.holding = Some(tok);
            } else {
                ctx.send(succ, Wire::Token(tok));
            }
        }
    }
}

impl<C: VsClient> Process for VsNode<C> {
    type Msg = Wire;
    type Input = Value;
    type Event = ImplEvent;

    fn id(&self) -> ProcId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Wire, ImplEvent>) {
        // Stagger probes per id to avoid synchronized storms.
        ctx.set_timer(self.cfg.mu + self.id.0 as Time, timer_kind(TAG_PROBE, 0));
        if let Some(view) = &self.view {
            if self.is_leader() {
                self.holding = Some(Box::new(Token::new(view)));
                ctx.set_timer(self.cfg.pi, timer_kind(TAG_LAUNCH, self.gen));
            }
            ctx.set_timer(self.token_timeout(), timer_kind(TAG_TOKEN, self.gen));
        }
    }

    fn on_message(&mut self, from: ProcId, msg: Wire, ctx: &mut Context<'_, Wire, ImplEvent>) {
        self.heard.insert(from, ctx.now());
        match msg {
            Wire::Probe => {
                let stranger = match &self.view {
                    None => true,
                    Some(v) => !v.set.contains(&from),
                };
                let recently = self
                    .last_form
                    .is_some_and(|t| ctx.now().saturating_sub(t) < 2 * self.cfg.delta);
                if stranger && self.forming.is_none() && !recently {
                    self.trigger_formation(ctx);
                }
            }
            Wire::Call { viewid } => {
                self.max_seen = self.max_seen.max(viewid);
                let above_current = match self.current_id() {
                    None => true,
                    Some(cur) => viewid > cur,
                };
                if viewid > self.accepted && above_current {
                    self.accepted = viewid;
                    // Accepting a fresher call supersedes our own attempt.
                    if self.forming.as_ref().is_some_and(|(vid, _)| *vid < viewid) {
                        self.forming = None;
                    }
                    ctx.send(from, Wire::Accept { viewid });
                }
            }
            Wire::Accept { viewid } => {
                if let Some((vid, responders)) = &mut self.forming {
                    if *vid == viewid {
                        responders.insert(from);
                    }
                }
            }
            Wire::Join { view } => {
                self.max_seen = self.max_seen.max(view.id);
                if !view.set.contains(&self.id) {
                    return;
                }
                let above_current = match self.current_id() {
                    None => true,
                    Some(cur) => view.id > cur,
                };
                // Do not install below something we already agreed to.
                if above_current && view.id >= self.accepted {
                    self.install(view, ctx);
                }
            }
            Wire::Token(tok) => {
                match self.current_id() {
                    Some(cur) if tok.view == cur => self.process_token(tok, ctx, false),
                    Some(cur) if tok.view > cur => self.pending_token = Some(tok),
                    None => self.pending_token = Some(tok),
                    _ => {} // stale token from a dead view: drop
                }
            }
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, Wire, ImplEvent>) {
        let tag = kind & TAG_MASK;
        let gen = kind >> 3;
        match tag {
            TAG_PROBE => {
                let outside: Vec<ProcId> = self
                    .cfg
                    .procs
                    .iter()
                    .copied()
                    .filter(|&q| {
                        q != self.id
                            && match &self.view {
                                None => true,
                                Some(v) => !v.set.contains(&q),
                            }
                    })
                    .collect();
                for q in outside {
                    ctx.send(q, Wire::Probe);
                }
                ctx.set_timer(self.cfg.mu, timer_kind(TAG_PROBE, 0));
            }
            TAG_TOKEN => {
                if gen != self.gen || self.view.is_none() {
                    return;
                }
                let elapsed = ctx.now().saturating_sub(self.last_token);
                let timeout = self.token_timeout();
                if elapsed >= timeout && self.forming.is_none() {
                    self.trigger_formation(ctx);
                    // Keep watching in case the formation stalls.
                    ctx.set_timer(timeout, timer_kind(TAG_TOKEN, self.gen));
                } else {
                    ctx.set_timer(
                        timeout.saturating_sub(elapsed).max(1),
                        timer_kind(TAG_TOKEN, self.gen),
                    );
                }
            }
            TAG_LAUNCH => {
                if gen != self.gen {
                    return;
                }
                if let Some(mut tok) = self.holding.take() {
                    tok.round += 1;
                    self.process_token(tok, ctx, true);
                }
                ctx.set_timer(self.cfg.pi, timer_kind(TAG_LAUNCH, self.gen));
            }
            TAG_FORM => {
                if gen != self.form_seq {
                    return;
                }
                if let Some((vid, responders)) = self.forming.take() {
                    if self.accepted > vid {
                        return; // a higher formation superseded ours
                    }
                    self.install_and_announce(View::new(vid, responders), ctx);
                }
            }
            _ => unreachable!("unknown timer tag {tag}"),
        }
    }

    fn on_input(&mut self, a: Value, ctx: &mut Context<'_, Wire, ImplEvent>) {
        ctx.emit(ImplEvent::Bcast { p: self.id, a: a.clone() });
        let mut effects = ClientEffects::default();
        self.client.on_input(a, &mut effects);
        self.queue_effects(effects, ctx);
    }
}
