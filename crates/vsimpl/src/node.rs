//! The VS service node: Cristian–Schmuck membership plus the token ring
//! (Section 8), as a [`gcs_netsim::Process`].

use crate::detector::{AdaptiveDetector, DetectorBounds, DetectorPolicy};
use crate::timed_vstoto::{ClientEffects, VsClient};
use crate::wire::{ImplEvent, Token, TokenMsg, Wire};
use gcs_model::{ProcId, Time, Value, View, ViewId};
use gcs_netsim::{Context, Process};
use std::collections::{BTreeMap, BTreeSet};

/// Which membership protocol to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MembershipMode {
    /// The 3-round protocol of Section 8: call → accept → join.
    ThreeRound,
    /// The 1-round variant (footnote 7): the initiator announces a
    /// membership built from recently heard-from processors, with no
    /// call/accept exchange. Forms views faster but from staler
    /// information, so it stabilizes less quickly.
    OneRound,
}

/// Protocol parameters.
#[derive(Clone, Debug)]
pub struct ProtoConfig {
    /// The ambient processor set *P*.
    pub procs: BTreeSet<ProcId>,
    /// The initial membership *P₀* (these processors start in *v₀*).
    pub p0: BTreeSet<ProcId>,
    /// The (maximum) good-channel delay δ; must match the network config.
    pub delta: Time,
    /// The token launch period π (must exceed `n·δ`).
    pub pi: Time,
    /// The merge-probe period μ.
    pub mu: Time,
    /// Membership protocol variant.
    pub mode: MembershipMode,
    /// Totem-style *safe delivery* (ablation E9, cf. introduction
    /// difference #5): when true, a message is delivered to the client
    /// only once every member is known to have received it, so the
    /// `gprcv` and `safe` indications coincide; when false (the paper's
    /// VS), delivery happens as soon as the token brings the message and
    /// the safe indication follows separately.
    pub safe_delivery: bool,
    /// Maximum number of token rounds the leader keeps in flight at
    /// once. 1 reproduces the classic single circulating token; larger
    /// values pipeline the ring so newly sequenced batches ship without
    /// waiting for the previous rotation to complete.
    pub pipeline: u32,
    /// Failure-detection policy: the paper's fixed `π + (n+3)δ` token
    /// timeout, or the adaptive accrual detector whose timeout tracks
    /// measured inter-arrival gaps (see [`crate::detector`]). Fixed is
    /// the default and keeps wire behavior byte-identical.
    pub detector: DetectorPolicy,
}

impl ProtoConfig {
    /// A sensible configuration for `n` processors all starting in the
    /// group, with the given δ: `π = 2nδ`, `μ = 4nδ`.
    pub fn standard(n: u32, delta: Time) -> Self {
        let procs = ProcId::range(n);
        ProtoConfig {
            p0: procs.clone(),
            procs,
            delta,
            pi: 2 * n as Time * delta,
            mu: 4 * n as Time * delta,
            mode: MembershipMode::ThreeRound,
            safe_delivery: false,
            pipeline: 4,
            detector: DetectorPolicy::Fixed,
        }
    }
}

// Timer kinds: low 3 bits tag, rest the install generation (the
// formation deadline timer carries the formation attempt instead).
const TAG_PROBE: u64 = 0;
const TAG_TOKEN: u64 = 1;
const TAG_LAUNCH: u64 = 2;
const TAG_FORM: u64 = 3;
const TAG_MASK: u64 = 0b111;

/// Upper bound on entries a member will hold from rounds that overtook a
/// gap. At most `pipeline` rounds are ever in flight, so a healthy ring
/// never comes close; the cap only guards memory against a hostile peer.
const STASH_MAX: usize = 4096;

fn timer_kind(tag: u64, gen: u64) -> u64 {
    tag | (gen << 3)
}

/// The VS service node hosting a [`VsClient`] (usually the
/// [`crate::TimedVsToTo`] layer).
pub struct VsNode<C> {
    id: ProcId,
    cfg: ProtoConfig,
    client: C,
    // --- membership state ---
    view: Option<View>,
    /// Bumped at every install; timers carry the generation they were set
    /// in and stale ones are ignored.
    gen: u64,
    /// Highest view identifier ever seen anywhere.
    max_seen: ViewId,
    /// Highest view identifier accepted (replied to, or installed).
    accepted: ViewId,
    /// In-progress formation: proposed id and responders so far.
    forming: Option<(ViewId, BTreeSet<ProcId>)>,
    /// Bumped at every formation attempt; the formation deadline timer
    /// carries the attempt it was set for. The view generation is not
    /// enough: a superseded attempt leaves its timer pending, and if a
    /// fresh attempt starts before it fires (no install in between, so
    /// `gen` is unchanged), the stale timer would close the new
    /// attempt's accept window after ~1 ms and install a spurious
    /// near-singleton view.
    form_seq: u64,
    last_form: Option<Time>,
    /// Last time each processor was heard from (any packet).
    heard: BTreeMap<ProcId, Time>,
    // --- token state (per current view) ---
    out_buf: Vec<TokenMsg>,
    /// Retained suffix of the per-view total order: `log[0]` sits at
    /// absolute sequence position `log_start`. The prefix below the
    /// token's `acked` cursor has been delivered and reported safe
    /// everywhere and is discarded.
    log: std::collections::VecDeque<TokenMsg>,
    log_start: u64,
    /// Absolute cursors into the total order (client delivery and safe
    /// indication respectively); receipt is `log_start + log.len()`.
    delivered_count: u64,
    safe_count: u64,
    /// Tokens for a view above the current one, held until that view is
    /// installed (several can race ahead of a join when pipelined).
    /// Tokens arrive already boxed inside `Wire::Token`; keeping the box
    /// means holding and later replaying one is a pointer move.
    #[allow(clippy::vec_box)]
    pending_tokens: Vec<Box<Token>>,
    /// Entries from rounds that arrived ahead of a gap (links may
    /// reorder), keyed by absolute sequence position; spliced into the
    /// log as soon as the missing prefix shows up.
    stash: BTreeMap<u64, TokenMsg>,
    last_token: Time,
    mid_counter: u64,
    // --- leader state (meaningful only while leading the current view) ---
    /// Round number of the next launch (rounds start at 1 per view).
    next_round: u64,
    /// Highest round that has completed its rotation.
    last_returned: u64,
    /// Absolute sequence position up to which entries have been shipped.
    sent_high: u64,
    /// Ack cursor: launch-time safe prefix of the last returned round.
    acked: u64,
    /// Latest per-member receipt counts (entrywise max over returns).
    last_counts: BTreeMap<ProcId, u64>,
    /// Launch records `(round, safe prefix at launch)`: when round r
    /// returns, every member has processed r and therefore reported safe
    /// at least r's launch prefix, which then becomes the ack cursor.
    launch_sps: std::collections::VecDeque<(u64, u64)>,
    /// Per-source high-water message ids already sequenced from token
    /// `collect` fields; mids are strictly increasing per source, so
    /// this deduplicates pickups carried by duplicated tokens.
    seq_mids: BTreeMap<ProcId, u64>,
    /// Accrual detector state (`Some` only under
    /// [`DetectorPolicy::Adaptive`]). Volatile, like the heard-from map:
    /// a recovered incarnation re-learns the network from scratch.
    detector: Option<AdaptiveDetector>,
}

/// The part of a node's state assumed to live on stable storage, for
/// crash/recovery: the highest view identifiers ever seen or agreed to
/// (so a recovered node never proposes or installs below something its
/// previous incarnation committed to — which would violate view
/// monotonicity), the message-identifier counter (so recovered `gpsnd`s
/// never reuse a mid), and the client layer itself (the `VStoTO` state
/// holding everything the TO client has been shown — re-delivering it
/// after a restart would violate TO's no-duplication).
///
/// Everything else — the installed view, the token, in-progress
/// formations, out-buffered messages, who was heard from when — is
/// volatile and lost in a crash; the membership protocol rebuilds it.
#[derive(Clone, Debug)]
pub struct StableState<C> {
    /// Highest view identifier ever seen anywhere.
    pub max_seen: ViewId,
    /// Highest view identifier accepted (replied to, or installed).
    pub accepted: ViewId,
    /// The message-identifier counter.
    pub mid_counter: u64,
    /// The hosted client layer (e.g. [`crate::TimedVsToTo`]).
    pub client: C,
}

impl<C: VsClient> VsNode<C> {
    /// Creates the node for processor `id` hosting `client`.
    pub fn new(id: ProcId, cfg: ProtoConfig, client: C) -> Self {
        assert!(cfg.procs.contains(&id), "{id} not in the ambient set");
        assert!(cfg.pi > cfg.procs.len() as Time * cfg.delta, "token period π must exceed n·δ");
        let in_p0 = cfg.p0.contains(&id);
        let view = in_p0.then(|| View::initial(cfg.p0.clone()));
        let detector = match &cfg.detector {
            DetectorPolicy::Fixed => None,
            DetectorPolicy::Adaptive(ac) => Some(AdaptiveDetector::new(ac.clone())),
        };
        VsNode {
            id,
            cfg,
            client,
            view,
            gen: 0,
            max_seen: ViewId::initial(),
            accepted: ViewId::initial(),
            forming: None,
            form_seq: 0,
            last_form: None,
            heard: BTreeMap::new(),
            out_buf: Vec::new(),
            log: std::collections::VecDeque::new(),
            log_start: 0,
            delivered_count: 0,
            safe_count: 0,
            pending_tokens: Vec::new(),
            stash: BTreeMap::new(),
            last_token: 0,
            mid_counter: 0,
            next_round: 1,
            last_returned: 0,
            sent_high: 0,
            acked: 0,
            last_counts: BTreeMap::new(),
            launch_sps: std::collections::VecDeque::new(),
            seq_mids: BTreeMap::new(),
            detector,
        }
    }

    /// Snapshots the stable-storage portion of the state (see
    /// [`StableState`]). A crash may be modeled by dropping the node and
    /// later passing this snapshot to [`VsNode::recover`].
    pub fn stable_state(&self) -> StableState<C>
    where
        C: Clone,
    {
        StableState {
            max_seen: self.max_seen,
            accepted: self.accepted,
            mid_counter: self.mid_counter,
            client: self.client.clone(),
        }
    }

    /// Reconstructs a node from stable storage after a crash. The
    /// recovered node starts with **no installed view** (its previous
    /// view's volatile state — token, buffers, formation — is gone); it
    /// rejoins via the normal probe/call/join path, and because
    /// `max_seen`/`accepted` survived, every view it subsequently
    /// installs is above anything its previous incarnation committed to.
    pub fn recover(id: ProcId, cfg: ProtoConfig, stable: StableState<C>) -> Self {
        assert!(cfg.procs.contains(&id), "{id} not in the ambient set");
        assert!(cfg.pi > cfg.procs.len() as Time * cfg.delta, "token period π must exceed n·δ");
        let detector = match &cfg.detector {
            DetectorPolicy::Fixed => None,
            DetectorPolicy::Adaptive(ac) => Some(AdaptiveDetector::new(ac.clone())),
        };
        VsNode {
            id,
            cfg,
            client: stable.client,
            view: None,
            gen: 0,
            max_seen: stable.max_seen,
            accepted: stable.accepted,
            forming: None,
            form_seq: 0,
            last_form: None,
            heard: BTreeMap::new(),
            out_buf: Vec::new(),
            log: std::collections::VecDeque::new(),
            log_start: 0,
            delivered_count: 0,
            safe_count: 0,
            pending_tokens: Vec::new(),
            stash: BTreeMap::new(),
            last_token: 0,
            mid_counter: stable.mid_counter,
            next_round: 1,
            last_returned: 0,
            sent_high: 0,
            acked: 0,
            last_counts: BTreeMap::new(),
            launch_sps: std::collections::VecDeque::new(),
            seq_mids: BTreeMap::new(),
            detector,
        }
    }

    /// The hosted client.
    pub fn client(&self) -> &C {
        &self.client
    }

    /// The currently installed view, if any.
    pub fn current_view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// A one-line rendering of the membership-protocol state, for
    /// diagnostics and experiments.
    pub fn membership_debug(&self) -> String {
        format!(
            "view={:?} accepted={} max_seen={} forming={:?} last_form={:?}",
            self.view.as_ref().map(|v| v.to_string()),
            self.accepted,
            self.max_seen,
            self.forming.as_ref().map(|(vid, r)| format!("{vid}:{r:?}")),
            self.last_form,
        )
    }

    fn current_id(&self) -> Option<ViewId> {
        self.view.as_ref().map(|v| v.id)
    }

    fn is_leader(&self) -> bool {
        self.view.as_ref().and_then(|v| v.leader()) == Some(self.id)
    }

    /// The paper's fixed token-loss deadline `π + (n+3)δ` (stagger
    /// excluded): π between launches plus up to (n+3)δ in flight.
    fn fixed_token_deadline(&self) -> Time {
        let n = self.view.as_ref().map(|v| v.size()).unwrap_or(1) as Time;
        self.cfg.pi + (n + 3) * self.cfg.delta
    }

    fn token_timeout(&self) -> Time {
        let fixed = self.fixed_token_deadline();
        // Under the adaptive policy the deadline tracks the measured
        // token inter-arrival tail, clamped to [fixed, cap × fixed]; a
        // cold detector behaves exactly like the fixed one.
        let core = match &self.detector {
            Some(d) => d.token_timeout(fixed),
            None => fixed,
        };
        // Per-id stagger so simultaneous expiry does not cause call
        // storms.
        core + self.id.0 as Time
    }

    /// The effective `δ̂/π̂` bounds the current detection deadline
    /// implies, for the gcs-obs monitors; `None` under the fixed policy
    /// (the configured bounds apply unchanged).
    pub fn detector_bounds(&self) -> Option<DetectorBounds> {
        let d = self.detector.as_ref()?;
        let n = self.view.as_ref().map(|v| v.size()).unwrap_or(1) as u32;
        Some(d.bounds(self.fixed_token_deadline(), self.cfg.pi, n, self.cfg.delta))
    }

    /// Per-peer accrual suspicion at `now`, in per-mille of that peer's
    /// measured inter-arrival tail (1000 = the silence has reached the
    /// tail estimate). `None` under the fixed policy or for a peer never
    /// heard from.
    pub fn peer_suspicion_millis(&self, peer: ProcId, now: Time) -> Option<u64> {
        let fallback = self.fixed_token_deadline();
        self.detector.as_ref()?.peer_suspicion_millis(peer, now, fallback)
    }

    fn next_mid(&mut self) -> u64 {
        self.mid_counter += 1;
        ((self.id.0 as u64) << 40) | self.mid_counter
    }

    fn queue_effects(&mut self, effects: ClientEffects, ctx: &mut Context<'_, Wire, ImplEvent>) {
        for m in effects.gpsnd {
            // A send while no view is installed is ignored, matching
            // VS-machine's treatment of gpsnd at ⊥ — but the event is
            // still emitted so traces reflect the attempt.
            let mid = self.next_mid();
            ctx.emit(ImplEvent::GpSnd { p: self.id, mid, m: m.clone() });
            if self.view.is_some() {
                self.out_buf.push(TokenMsg { src: self.id, mid, msg: m });
            }
        }
        for (src, a) in effects.brcv {
            ctx.emit(ImplEvent::Brcv { src, dst: self.id, a });
        }
    }

    // ----------------------------------------------------------------
    // Membership
    // ----------------------------------------------------------------

    fn trigger_formation(&mut self, ctx: &mut Context<'_, Wire, ImplEvent>) {
        self.last_form = Some(ctx.now());
        let base =
            self.max_seen.max(self.accepted).max(self.current_id().unwrap_or_else(ViewId::initial));
        let vid = base.successor(self.id);
        self.max_seen = vid;
        match self.cfg.mode {
            MembershipMode::ThreeRound => {
                self.accepted = vid;
                self.forming = Some((vid, [self.id].into()));
                self.form_seq += 1;
                for &q in &self.cfg.procs.clone() {
                    if q != self.id {
                        ctx.send(q, Wire::Call { viewid: vid });
                    }
                }
                // Strictly more than the 2δ round trip: with the
                // deterministic simulator a call + accept can take exactly
                // 2δ, and the deadline must not tie with (and beat) the
                // last accept's delivery. Keyed by the attempt, not the
                // view generation: a timer left over from a superseded
                // attempt must not close this attempt's accept window.
                ctx.set_timer(2 * self.cfg.delta + 1, timer_kind(TAG_FORM, self.form_seq));
            }
            MembershipMode::OneRound => {
                let horizon = ctx.now().saturating_sub(2 * self.cfg.mu);
                let members: BTreeSet<ProcId> = self
                    .cfg
                    .procs
                    .iter()
                    .copied()
                    .filter(|&q| q == self.id || self.heard.get(&q).is_some_and(|&t| t >= horizon))
                    .collect();
                self.accepted = vid;
                self.install_and_announce(View::new(vid, members), ctx);
            }
        }
    }

    fn install_and_announce(&mut self, v: View, ctx: &mut Context<'_, Wire, ImplEvent>) {
        for &q in &v.set {
            if q != self.id {
                ctx.send(q, Wire::Join { view: v.clone() });
            }
        }
        self.install(v, ctx);
    }

    fn install(&mut self, v: View, ctx: &mut Context<'_, Wire, ImplEvent>) {
        debug_assert!(v.set.contains(&self.id));
        self.gen += 1;
        self.max_seen = self.max_seen.max(v.id);
        self.accepted = self.accepted.max(v.id);
        self.view = Some(v.clone());
        self.forming = None;
        self.out_buf.clear();
        self.log.clear();
        self.log_start = 0;
        self.delivered_count = 0;
        self.safe_count = 0;
        self.stash.clear();
        self.last_token = ctx.now();
        if let Some(d) = &mut self.detector {
            // Formation time is not an inter-arrival gap: re-anchor so
            // the estimator only ever sees in-view token pacing.
            d.reanchor_token(ctx.now());
        }
        self.next_round = 1;
        self.last_returned = 0;
        self.sent_high = 0;
        self.acked = 0;
        self.last_counts = v.set.iter().map(|&p| (p, 0)).collect();
        self.launch_sps.clear();
        self.seq_mids.clear();
        ctx.emit(ImplEvent::NewView { p: self.id, v: v.clone() });
        let mut effects = ClientEffects::default();
        self.client.on_newview(&v, &mut effects);
        self.queue_effects(effects, ctx);
        if self.is_leader() {
            // Launch promptly on installation, then pace by π.
            ctx.set_timer(0, timer_kind(TAG_LAUNCH, self.gen));
        }
        ctx.set_timer(self.token_timeout(), timer_kind(TAG_TOKEN, self.gen));
        // Tokens that raced ahead of our join can be processed now, in
        // arrival (= round) order.
        let pending = std::mem::take(&mut self.pending_tokens);
        for tok in pending {
            if Some(tok.view) == self.current_id() {
                self.process_token(tok, ctx);
            }
        }
    }

    // ----------------------------------------------------------------
    // Token (batched, pipelined: the leader sequences, rounds ship
    // deltas, members collect and acknowledge)
    // ----------------------------------------------------------------

    fn log_end(&self) -> u64 {
        self.log_start + self.log.len() as u64
    }

    /// Discards retained log entries below `acked`. Clamped to what has
    /// already been delivered *and* reported safe locally, so a hostile
    /// or corrupted ack cursor can never discard undelivered entries
    /// (which would break the delivery cursors' indexing).
    fn prune_log(&mut self, acked: u64) {
        let limit = acked.min(self.safe_count).min(self.delivered_count);
        while self.log_start < limit {
            self.log.pop_front();
            self.log_start += 1;
        }
    }

    /// Delivers log entries to the client up to absolute position
    /// `target` (callers keep `target ≤ log_end`).
    fn deliver_up_to(&mut self, target: u64, ctx: &mut Context<'_, Wire, ImplEvent>) -> bool {
        let mut progressed = false;
        while self.delivered_count < target {
            let tm = self.log[(self.delivered_count - self.log_start) as usize].clone();
            self.delivered_count += 1;
            ctx.emit(ImplEvent::GpRcv {
                src: tm.src,
                dst: self.id,
                mid: tm.mid,
                m: tm.msg.clone(),
            });
            let mut effects = ClientEffects::default();
            self.client.on_gprcv(tm.src, &tm.msg, &mut effects);
            self.queue_effects(effects, ctx);
            progressed = true;
        }
        progressed
    }

    /// Runs client delivery and safe indication given the safe prefix
    /// `sp` (callers keep `sp ≤ log_end`). Under safe delivery the
    /// client sees a message only once it is safe; otherwise delivery
    /// runs ahead to everything received and safe follows separately.
    fn advance_client(&mut self, sp: u64, ctx: &mut Context<'_, Wire, ImplEvent>) -> bool {
        let mut progressed = false;
        if self.cfg.safe_delivery {
            progressed |= self.deliver_up_to(sp, ctx);
        } else {
            progressed |= self.deliver_up_to(self.log_end(), ctx);
        }
        while self.safe_count < sp {
            let tm = self.log[(self.safe_count - self.log_start) as usize].clone();
            self.safe_count += 1;
            ctx.emit(ImplEvent::Safe { src: tm.src, dst: self.id, mid: tm.mid, m: tm.msg.clone() });
            let mut effects = ClientEffects::default();
            self.client.on_safe(tm.src, &tm.msg, &mut effects);
            self.queue_effects(effects, ctx);
            progressed = true;
        }
        progressed
    }

    fn process_token(&mut self, tok: Box<Token>, ctx: &mut Context<'_, Wire, ImplEvent>) {
        if self.is_leader() {
            self.leader_absorb_token(*tok, ctx);
        } else {
            self.member_process_token(tok, ctx);
        }
    }

    /// A member's visit: extend the log with the round's delta, hand
    /// pending sends to the token, update the receipt count, deliver and
    /// report safe, and forward along the ring.
    fn member_process_token(
        &mut self,
        mut tok: Box<Token>,
        ctx: &mut Context<'_, Wire, ImplEvent>,
    ) {
        let view = self.view.clone().expect("token processed only inside a view");
        self.prune_log(tok.acked);
        if tok.seq_start <= self.log_end() {
            // Contiguous round: append the unseen part of the delta.
            // Overlap with what earlier (possibly duplicated or
            // retransmitted) rounds already shipped is skipped, which
            // makes re-processing idempotent. Only a contiguous round
            // refreshes the token clock: if an earlier round was truly
            // lost, later rounds keep the ring spinning but the clock
            // stales out and the loss timeout reforms the view — unless
            // the leader's floor retransmission heals the hole first.
            self.last_token = ctx.now();
            if let Some(d) = &mut self.detector {
                d.observe_token(ctx.now());
            }
            let skip = (self.log_end() - tok.seq_start) as usize;
            for tm in tok.entries.iter().skip(skip) {
                self.log.push_back(tm.clone());
            }
        } else {
            // This round overtook one still in flight (links may
            // reorder). Its entries sit at fixed absolute positions, so
            // stash them for splicing once the missing prefix shows up.
            for (i, tm) in tok.entries.iter().enumerate() {
                let pos = tok.seq_start + i as u64;
                if pos >= self.log_end() && self.stash.len() < STASH_MAX {
                    self.stash.insert(pos, tm.clone());
                }
            }
        }
        // Splice any stashed entries that have become contiguous, then
        // drop stale stash positions the log has since covered.
        while let Some(tm) = self.stash.remove(&self.log_end()) {
            self.log.push_back(tm);
        }
        let end = self.log_end();
        while let Some((&pos, _)) = self.stash.iter().next() {
            if pos < end {
                self.stash.remove(&pos);
            } else {
                break;
            }
        }
        loop {
            let mut progressed = false;
            if !self.out_buf.is_empty() {
                tok.collect.append(&mut self.out_buf);
                progressed = true;
            }
            tok.delivered.insert(self.id, self.log_end());
            // Min over own receipt too, so sp ≤ log_end even if a
            // corrupted token inflates other members' counts.
            let sp = tok.safe_prefix().min(self.log_end());
            progressed |= self.advance_client(sp, ctx);
            if !progressed {
                break;
            }
        }
        let succ = view.ring_successor(self.id).expect("member of own view");
        if succ != self.id {
            if Some(succ) == view.leader() {
                // The hop back to the leader never needs the round's
                // entries — the leader sequenced them itself and absorbs
                // only `collect`, the receipt counts, and the round
                // number. Dropping them here saves re-encoding (and the
                // leader re-decoding) the whole batch once per rotation.
                tok.entries.clear();
            }
            ctx.send(succ, Wire::Token(tok));
        }
    }

    /// A round returned to the leader: sequence what the ring collected,
    /// fold in the receipt counts, advance the ack cursor, and keep the
    /// pipeline full.
    fn leader_absorb_token(&mut self, tok: Token, ctx: &mut Context<'_, Wire, ImplEvent>) {
        self.last_token = ctx.now();
        if let Some(d) = &mut self.detector {
            d.observe_token(ctx.now());
        }
        // Sequence collected sends from *any* arriving copy — a
        // duplicated token instance can carry pickups the original
        // never saw. Mids are strictly increasing per source, so the
        // high-water filter keeps this idempotent.
        for tm in tok.collect {
            let high = self.seq_mids.entry(tm.src).or_insert(0);
            if tm.mid > *high {
                *high = tm.mid;
                self.log.push_back(tm);
            }
        }
        // Fold in receipt counts from every current-view return, even
        // reordered or duplicated ones: counts are genuine monotone
        // receipts, so a max-merge (clamped to our own log end) is
        // always sound and keeps the floor fresh when rounds overtake
        // each other on non-FIFO links.
        let end = self.log_end();
        for (p, c) in tok.delivered {
            if let Some(e) = self.last_counts.get_mut(&p) {
                *e = (*e).max(c.min(end));
            }
        }
        // Ack bookkeeping for returns of rounds we actually launched
        // (rounds may return out of order; the high-water keeps it
        // monotone).
        if tok.round < self.next_round {
            self.last_returned = self.last_returned.max(tok.round);
            // Every member processed each round up to `last_returned`,
            // so each has reported safe at least that round's
            // launch-time prefix: that prefix is now a valid ack cursor.
            while let Some(&(r, sp)) = self.launch_sps.front() {
                if r > self.last_returned {
                    break;
                }
                self.acked = self.acked.max(sp);
                self.launch_sps.pop_front();
            }
        }
        self.leader_progress(ctx);
        self.maybe_launch(ctx, false);
    }

    /// Sequences the leader's own pending sends and advances its client
    /// delivery/safe cursors from the latest counts.
    fn leader_progress(&mut self, ctx: &mut Context<'_, Wire, ImplEvent>) {
        loop {
            let mut progressed = false;
            if !self.out_buf.is_empty() {
                for tm in self.out_buf.drain(..) {
                    self.log.push_back(tm);
                }
                progressed = true;
            }
            self.last_counts.insert(self.id, self.log_end());
            let sp = self.last_counts.values().copied().min().unwrap_or(0).min(self.log_end());
            progressed |= self.advance_client(sp, ctx);
            if !progressed {
                break;
            }
        }
        if self.view.as_ref().is_some_and(|v| v.size() == 1) {
            // Singleton view: there is no ring, everything sequenced is
            // immediately safe and acknowledged.
            self.acked = self.log_end();
        }
        self.prune_log(self.acked);
    }

    /// Launches the next round if the pipeline has room and there is a
    /// reason to: unshipped entries always warrant a launch; with nothing
    /// in flight, unacknowledged work or a π heartbeat does too.
    fn maybe_launch(&mut self, ctx: &mut Context<'_, Wire, ImplEvent>, heartbeat: bool) {
        let Some(view) = self.view.clone() else { return };
        if view.size() <= 1 {
            // No ring to launch into; keep the token clock fresh so the
            // loss timeout stays quiet.
            self.last_token = ctx.now();
            return;
        }
        let k = self.cfg.pipeline.max(1) as u64;
        let in_flight = (self.next_round - 1).saturating_sub(self.last_returned);
        if in_flight >= k {
            return;
        }
        let unsent = self.log_end() > self.sent_high;
        let busy = self.acked < self.log_end();
        if !(unsent || (in_flight == 0 && (busy || heartbeat))) {
            return;
        }
        // With the pipeline drained, ship from the lowest receipt count
        // instead of the send high-water: if a round was lost in transit,
        // this retransmits its entries and heals member gaps without a
        // view reformation. (The floor never precedes the log: counts
        // are clamped ≥ acked ≥ log_start by pruning.)
        let start = if in_flight == 0 {
            self.last_counts.values().copied().min().unwrap_or(0).max(self.log_start)
        } else {
            self.sent_high
        };
        let skip = (start - self.log_start) as usize;
        let tok = Token {
            view: view.id,
            round: self.next_round,
            seq_start: start,
            entries: self.log.iter().skip(skip).cloned().collect(),
            collect: Vec::new(),
            acked: self.acked,
            delivered: self.last_counts.clone(),
        };
        let sp_now = self.last_counts.values().copied().min().unwrap_or(0);
        self.launch_sps.push_back((self.next_round, sp_now));
        self.next_round += 1;
        self.sent_high = self.log_end();
        let succ = view.ring_successor(self.id).expect("member of own view");
        ctx.send(succ, Wire::Token(Box::new(tok)));
    }

    fn hold_pending(&mut self, tok: Box<Token>) {
        // Bounded: anything beyond a full pipeline of raced-ahead rounds
        // is recoverable through the loss timeout anyway.
        if self.pending_tokens.len() < 16 {
            self.pending_tokens.push(tok);
        }
    }
}

impl<C: VsClient> Process for VsNode<C> {
    type Msg = Wire;
    type Input = Value;
    type Event = ImplEvent;

    fn id(&self) -> ProcId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Wire, ImplEvent>) {
        // Stagger probes per id to avoid synchronized storms.
        ctx.set_timer(self.cfg.mu + self.id.0 as Time, timer_kind(TAG_PROBE, 0));
        if let Some(view) = &self.view {
            self.last_counts = view.set.iter().map(|&p| (p, 0)).collect();
            if self.is_leader() {
                ctx.set_timer(self.cfg.pi, timer_kind(TAG_LAUNCH, self.gen));
            }
            ctx.set_timer(self.token_timeout(), timer_kind(TAG_TOKEN, self.gen));
        }
    }

    fn on_message(&mut self, from: ProcId, msg: Wire, ctx: &mut Context<'_, Wire, ImplEvent>) {
        self.heard.insert(from, ctx.now());
        if let Some(d) = &mut self.detector {
            d.observe_peer(from, ctx.now());
        }
        match msg {
            Wire::Probe => {
                let stranger = match &self.view {
                    None => true,
                    Some(v) => !v.set.contains(&from),
                };
                let recently = self
                    .last_form
                    .is_some_and(|t| ctx.now().saturating_sub(t) < 2 * self.cfg.delta);
                if stranger && self.forming.is_none() && !recently {
                    self.trigger_formation(ctx);
                }
            }
            Wire::Call { viewid } => {
                self.max_seen = self.max_seen.max(viewid);
                let above_current = match self.current_id() {
                    None => true,
                    Some(cur) => viewid > cur,
                };
                if viewid > self.accepted && above_current {
                    self.accepted = viewid;
                    // Accepting a fresher call supersedes our own attempt.
                    if self.forming.as_ref().is_some_and(|(vid, _)| *vid < viewid) {
                        self.forming = None;
                    }
                    ctx.send(from, Wire::Accept { viewid });
                }
            }
            Wire::Accept { viewid } => {
                if let Some((vid, responders)) = &mut self.forming {
                    if *vid == viewid {
                        responders.insert(from);
                    }
                }
            }
            Wire::Join { view } => {
                self.max_seen = self.max_seen.max(view.id);
                if !view.set.contains(&self.id) {
                    return;
                }
                let above_current = match self.current_id() {
                    None => true,
                    Some(cur) => view.id > cur,
                };
                // Do not install below something we already agreed to.
                if above_current && view.id >= self.accepted {
                    self.install(view, ctx);
                }
            }
            Wire::Token(tok) => {
                match self.current_id() {
                    Some(cur) if tok.view == cur => self.process_token(tok, ctx),
                    Some(cur) if tok.view > cur => self.hold_pending(tok),
                    None => self.hold_pending(tok),
                    _ => {} // stale token from a dead view: drop
                }
            }
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, Wire, ImplEvent>) {
        let tag = kind & TAG_MASK;
        let gen = kind >> 3;
        match tag {
            TAG_PROBE => {
                let outside: Vec<ProcId> = self
                    .cfg
                    .procs
                    .iter()
                    .copied()
                    .filter(|&q| {
                        q != self.id
                            && match &self.view {
                                None => true,
                                Some(v) => !v.set.contains(&q),
                            }
                    })
                    .collect();
                for q in outside {
                    ctx.send(q, Wire::Probe);
                }
                ctx.set_timer(self.cfg.mu, timer_kind(TAG_PROBE, 0));
            }
            TAG_TOKEN => {
                if gen != self.gen || self.view.is_none() {
                    return;
                }
                let elapsed = ctx.now().saturating_sub(self.last_token);
                let timeout = self.token_timeout();
                if elapsed >= timeout && self.forming.is_none() {
                    if let Some(d) = &mut self.detector {
                        // The silence that tripped the detector is a
                        // censored gap observation: feeding it back
                        // widens the next deadline (RTO-style backoff)
                        // instead of tripping at the same threshold
                        // through a sustained disturbance.
                        d.observe_timeout(elapsed);
                    }
                    self.trigger_formation(ctx);
                    // Keep watching in case the formation stalls.
                    ctx.set_timer(timeout, timer_kind(TAG_TOKEN, self.gen));
                } else {
                    ctx.set_timer(
                        timeout.saturating_sub(elapsed).max(1),
                        timer_kind(TAG_TOKEN, self.gen),
                    );
                }
            }
            TAG_LAUNCH => {
                if gen != self.gen {
                    return;
                }
                if self.view.is_some() && self.is_leader() {
                    self.leader_progress(ctx);
                    self.maybe_launch(ctx, true);
                    ctx.set_timer(self.cfg.pi, timer_kind(TAG_LAUNCH, self.gen));
                }
            }
            TAG_FORM => {
                if gen != self.form_seq {
                    return;
                }
                if let Some((vid, responders)) = self.forming.take() {
                    if self.accepted > vid {
                        return; // a higher formation superseded ours
                    }
                    self.install_and_announce(View::new(vid, responders), ctx);
                }
            }
            _ => unreachable!("unknown timer tag {tag}"),
        }
    }

    fn on_input(&mut self, a: Value, ctx: &mut Context<'_, Wire, ImplEvent>) {
        ctx.emit(ImplEvent::Bcast { p: self.id, a: a.clone() });
        let mut effects = ClientEffects::default();
        self.client.on_input(a, &mut effects);
        self.queue_effects(effects, ctx);
        // The leader sequences its own sends immediately and ships them
        // without waiting for a rotation; members' sends wait for the
        // next token visit.
        if self.view.is_some() && self.is_leader() {
            self.leader_progress(ctx);
            self.maybe_launch(ctx, false);
        }
    }
}
