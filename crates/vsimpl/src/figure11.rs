//! The `VStoTO-property` of Figure 11 — the conditional property at the
//! heart of the Theorem 7.1 proof — checked on recorded stack traces.
//!
//! Figure 11 is the bridge between the layers: *assuming* the VS layer
//! has stabilized (no more `newview`s at Q, one final view ⟨g, S⟩ with
//! S = Q, and in-view messages safe within d — the conclusions of
//! `VS-property`), the `VStoTO` layer needs at most one further interval
//! of length ≤ d (the second phase of recovery: collecting the safe
//! indications for the state-exchange messages) before every data value —
//! including pre-stabilization ones recovered through the exchange — is
//! delivered to all of Q within d of its submission or of the interval's
//! end. Figure 12 is the composition picture: `VS-property`'s (b, d)
//! plus this property yields `TO-property(b+d, d, Q)`.
//!
//! The checker locates the stabilization split exactly as the paper's
//! operational argument does: `ltime(α′)` is the later of the failure
//! stabilization point and the last `newview` at Q; premises 1–6 are then
//! verified (not assumed), and the conclusion's interval `ltime(α‴)` is
//! measured as the minimal extra slack that satisfies every delivery
//! deadline — the property holds iff that slack is at most d.

use crate::wire::ImplEvent;
use gcs_ioa::TimedTrace;
use gcs_model::{FailureMap, ProcId, Time, Value, View};
use gcs_netsim::TraceEvent;
use std::collections::{BTreeMap, BTreeSet};

/// Parameters: the safe-delivery bound d of the VS layer and the
/// stabilized set Q within the ambient set.
#[derive(Clone, Debug)]
pub struct Figure11Params {
    /// The VS safe-delivery bound d.
    pub d: Time,
    /// The stabilized set Q.
    pub q: BTreeSet<ProcId>,
    /// The ambient processor set.
    pub ambient: BTreeSet<ProcId>,
}

/// The checker's report.
#[derive(Clone, Debug)]
pub struct Figure11Report {
    /// Whether the premises (VS stabilization) held on this trace.
    pub premises_hold: bool,
    /// Which premise failed, if any.
    pub premise_failure: Option<String>,
    /// `ltime(α′)`: the stabilization split point.
    pub alpha_prime: Time,
    /// Measured `ltime(α‴)`: the minimal extra interval.
    pub measured_alpha3: Time,
    /// Delivery obligations resolved / censored by the horizon.
    pub resolved: usize,
    /// Obligations censored by the end of the trace.
    pub censored: usize,
    /// Conclusion violations.
    pub violations: Vec<String>,
    /// Whether `VStoTO-property` holds: premises ⇒ `measured_alpha3 ≤ d`
    /// and no violations (vacuously true if the premises fail —
    /// conditional properties say nothing then).
    pub holds: bool,
}

/// Checks the property on a recorded stack trace.
pub fn check_figure11(
    trace: &TimedTrace<TraceEvent<ImplEvent>>,
    params: &Figure11Params,
) -> Figure11Report {
    let mut report = Figure11Report {
        premises_hold: false,
        premise_failure: None,
        alpha_prime: 0,
        measured_alpha3: 0,
        resolved: 0,
        censored: 0,
        violations: Vec::new(),
        holds: true,
    };
    let horizon = trace.last_time();

    // Premises 4–6: failure stabilization for Q.
    let mut fm = FailureMap::all_good();
    let mut last_fail_q: Time = 0;
    for ev in trace.events() {
        if let TraceEvent::Fail { subject, status } = &ev.action {
            fm.set(*subject, *status);
            let touches = match subject {
                gcs_model::Subject::Loc(p) => params.q.contains(p),
                gcs_model::Subject::Link(p, r) => params.q.contains(p) || params.q.contains(r),
            };
            if touches {
                last_fail_q = ev.time;
            }
        }
    }
    if !fm.stabilized_for(&params.q, &params.ambient) {
        report.premise_failure = Some("failure status never stabilized for Q".into());
        return report; // vacuously holds
    }

    // Premises 1–2: last newview at Q; final views all ⟨g, S⟩ with S = Q.
    let mut last_view: BTreeMap<ProcId, (View, Time)> = BTreeMap::new();
    for ev in trace.events() {
        if let TraceEvent::App(ImplEvent::NewView { p, v }) = &ev.action {
            if params.q.contains(p) {
                last_view.insert(*p, (v.clone(), ev.time));
            }
        }
    }
    let mut final_view: Option<View> = None;
    let mut last_nv: Time = 0;
    for &p in &params.q {
        match last_view.get(&p) {
            None if params.q.len() == params.ambient.len() => {
                // Initial view counts when Q is everyone and no newview
                // ever fired (fully stable run).
                final_view.get_or_insert(View::initial(params.ambient.clone()));
            }
            None => {
                report.premise_failure = Some(format!("{p} never installed a view"));
                return report;
            }
            Some((v, t)) => {
                last_nv = last_nv.max(*t);
                match &final_view {
                    None => final_view = Some(v.clone()),
                    Some(w) if w != v => {
                        report.premise_failure = Some(format!("final views diverge: {w} vs {v}"));
                        return report;
                    }
                    _ => {}
                }
            }
        }
    }
    let final_view = final_view.expect("Q nonempty");
    if final_view.set != params.q {
        report.premise_failure = Some(format!("final membership {:?} ≠ Q", final_view.set));
        return report;
    }
    let alpha_prime = last_fail_q.max(last_nv);
    report.alpha_prime = alpha_prime;

    // Premise 3: every message sent from Q in the final view becomes safe
    // at all of Q within max(t, alpha_prime) + d (with horizon censoring).
    let mut current: BTreeMap<ProcId, Option<View>> =
        params.ambient.iter().map(|&p| (p, Some(View::initial(params.ambient.clone())))).collect();
    let mut safes: BTreeMap<u64, BTreeMap<ProcId, Time>> = BTreeMap::new();
    let mut in_view_sends: Vec<(u64, Time)> = Vec::new();
    for ev in trace.events() {
        match &ev.action {
            TraceEvent::App(ImplEvent::NewView { p, v }) => {
                current.insert(*p, Some(v.clone()));
            }
            TraceEvent::App(ImplEvent::GpSnd { p, mid, .. })
                if params.q.contains(p)
                    && current.get(p).cloned().flatten().as_ref() == Some(&final_view) =>
            {
                in_view_sends.push((*mid, ev.time));
            }
            TraceEvent::App(ImplEvent::Safe { dst, mid, .. }) => {
                safes.entry(*mid).or_default().entry(*dst).or_insert(ev.time);
            }
            _ => {}
        }
    }
    for (mid, t) in &in_view_sends {
        let deadline = (*t).max(alpha_prime) + params.d;
        let missing: Vec<ProcId> = params
            .q
            .iter()
            .copied()
            .filter(|r| safes.get(mid).and_then(|m| m.get(r)).is_none_or(|&ts| ts > deadline))
            .collect();
        if !missing.is_empty() && deadline <= horizon {
            report.premise_failure = Some(format!(
                "message #{mid} (t={t}) not safe at {missing:?} by {deadline} — \
                 VS conclusion does not hold on this trace"
            ));
            return report;
        }
    }
    report.premises_hold = true;

    // Conclusion: measure the minimal alpha3 such that every value sent
    // from Q (resp. delivered within Q) at time t reaches all of Q by
    // max(t, alpha_prime + alpha3) + d.
    let mut sent: BTreeMap<Value, (ProcId, Time)> = BTreeMap::new();
    let mut delivered: BTreeMap<Value, BTreeMap<ProcId, Time>> = BTreeMap::new();
    for ev in trace.events() {
        match &ev.action {
            TraceEvent::App(ImplEvent::Bcast { p, a }) => {
                sent.insert(a.clone(), (*p, ev.time));
            }
            TraceEvent::App(ImplEvent::Brcv { dst, a, .. }) => {
                delivered.entry(a.clone()).or_default().entry(*dst).or_insert(ev.time);
            }
            _ => {}
        }
    }
    let mut alpha3: Time = 0;
    let mut check_value = |what: &str, trigger: Time, a: &Value, report: &mut Figure11Report| {
        let at = delivered.get(a);
        let missing: Vec<ProcId> =
            params.q.iter().copied().filter(|r| !at.is_some_and(|m| m.contains_key(r))).collect();
        if missing.is_empty() {
            let t_v = at.expect("delivered everywhere").values().copied().max().expect("nonempty");
            if t_v > trigger.max(alpha_prime) + params.d {
                // Needs slack: alpha_prime + alpha3 ≥ t_v − d.
                alpha3 = alpha3.max((t_v - params.d).saturating_sub(alpha_prime));
            }
            report.resolved += 1;
        } else {
            let deadline = trigger.max(alpha_prime + params.d) + params.d;
            if deadline <= horizon {
                report.violations.push(format!(
                    "{what} {a:?} (t={trigger}) undelivered at {missing:?} by {deadline}"
                ));
            } else {
                report.censored += 1;
            }
        }
    };
    for (a, (p, t)) in &sent {
        if params.q.contains(p) {
            check_value("value sent from Q", *t, a, &mut report);
        }
    }
    for (a, at) in &delivered.clone() {
        if let Some(first_q) =
            at.iter().filter(|(r, _)| params.q.contains(r)).map(|(_, &t)| t).min()
        {
            check_value("value delivered within Q", first_q, a, &mut report);
        }
    }
    report.measured_alpha3 = alpha3;
    report.holds = alpha3 <= params.d && report.violations.is_empty();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stack, StackConfig};
    use gcs_model::failure::FailureScript;

    #[test]
    fn stable_run_satisfies_figure11() {
        let mut stack = Stack::new(StackConfig::standard(3, 5, 13));
        let pi = stack.config().pi;
        for i in 0..8u64 {
            stack.schedule_bcast(4 * pi + i * 10, ProcId((i % 3) as u32));
        }
        stack.run_until(4 * pi + 80 * pi);
        let d = crate::bounds::d(3, 5, pi);
        let r = check_figure11(
            stack.trace(),
            &Figure11Params { d, q: ProcId::range(3), ambient: ProcId::range(3) },
        );
        assert!(r.premises_hold, "{:?}", r.premise_failure);
        assert!(r.holds, "alpha3={} d={d} {:?}", r.measured_alpha3, r.violations);
        assert!(r.resolved > 0);
    }

    #[test]
    fn partitioned_q_satisfies_figure11() {
        let mut stack = Stack::new(StackConfig::standard(5, 5, 19));
        let pi = stack.config().pi;
        let ambient = ProcId::range(5);
        let q = ProcId::range(3);
        let rest: BTreeSet<ProcId> = ambient.difference(&q).copied().collect();
        let mut script = FailureScript::new();
        script.partition(8 * pi, &[q.clone(), rest], &ambient);
        stack.load_failures(&script);
        for i in 0..6u64 {
            stack.schedule_bcast(8 * pi + 10 + i * 20, ProcId((i % 3) as u32));
        }
        stack.run_until(8 * pi + 200 * pi);
        let d = crate::bounds::d(3, 5, pi);
        let r = check_figure11(stack.trace(), &Figure11Params { d, q, ambient });
        assert!(r.premises_hold, "{:?}", r.premise_failure);
        assert!(r.holds, "alpha3={} d={d} {:?}", r.measured_alpha3, r.violations);
    }

    #[test]
    fn unstabilized_trace_is_vacuous() {
        let mut stack = Stack::new(StackConfig::standard(3, 5, 23));
        stack.run_until(100);
        // Q smaller than ambient, but no partition was scripted: premises fail.
        let r = check_figure11(
            stack.trace(),
            &Figure11Params { d: 100, q: ProcId::range(2), ambient: ProcId::range(3) },
        );
        assert!(!r.premises_hold);
        assert!(r.holds, "conditional properties hold vacuously");
    }
}
