//! Wire messages of the membership/token protocol and the trace events
//! the implementation emits.

use gcs_core::msg::AppMsg;
use gcs_model::{ProcId, Value, View, ViewId};
use std::collections::BTreeMap;
use std::fmt;

/// One group-multicast message riding the token: the sender, a globally
/// unique message identifier, and the payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TokenMsg {
    /// The original sender (`gpsnd` location).
    pub src: ProcId,
    /// Harness-level unique identifier (for matching in timed traces).
    pub mid: u64,
    /// The payload.
    pub msg: AppMsg,
}

/// The circulating token of Section 8, batched and pipelined: instead of
/// re-shipping the whole per-view message history each hop, a token
/// carries a *delta* of the leader-sequenced order (`entries`, placed at
/// absolute positions `seq_start..`), picks up members' pending sends in
/// `collect` for the leader to sequence on return, and prunes everyone's
/// retained log with the `acked` high-water cursor. Rounds are numbered
/// so the leader can keep up to `ProtoConfig::pipeline` tokens in flight
/// at once; per-member counts still record receipt, and the safe prefix
/// is still their minimum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The view this token belongs to.
    pub view: ViewId,
    /// Round number: strictly increasing per launch within a view, so
    /// the leader can match returns to launches with several tokens in
    /// flight, and so duplicated tokens are absorbed idempotently.
    pub round: u64,
    /// Absolute sequence position of `entries[0]` in the per-view total
    /// order (equal to everything already shipped by earlier rounds).
    pub seq_start: u64,
    /// Newly sequenced messages, extending the total order at
    /// `seq_start..`.
    pub entries: Vec<TokenMsg>,
    /// Members' pending sends picked up this rotation, in ring order;
    /// the leader assigns them sequence positions when the token
    /// returns.
    pub collect: Vec<TokenMsg>,
    /// Acknowledgement cursor: every member had received (and reported
    /// safe) at least this prefix when the round carrying it launched,
    /// so members may discard retained log entries below it.
    pub acked: u64,
    /// Per-member receipt counts as of the leader's latest knowledge,
    /// updated in place as the token visits each member.
    pub delivered: BTreeMap<ProcId, u64>,
}

impl Token {
    /// A fresh token for a newly installed view.
    pub fn new(view: &View) -> Self {
        Token {
            view: view.id,
            round: 0,
            seq_start: 0,
            entries: Vec::new(),
            collect: Vec::new(),
            acked: 0,
            delivered: view.set.iter().map(|&p| (p, 0)).collect(),
        }
    }

    /// The number of messages every member has delivered (the safe
    /// prefix length).
    pub fn safe_prefix(&self) -> u64 {
        self.delivered.values().copied().min().unwrap_or(0)
    }
}

/// A protocol packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Wire {
    /// Periodic contact attempt to processors outside the sender's view.
    Probe,
    /// Round 1 of membership: call for participation in `viewid`.
    Call {
        /// The proposed view identifier.
        viewid: ViewId,
    },
    /// Round 2: acceptance of a call.
    Accept {
        /// The accepted view identifier.
        viewid: ViewId,
    },
    /// Round 3: the initiator announces the membership.
    Join {
        /// The new view.
        view: View,
    },
    /// The rotating ordered-delivery token.
    Token(Box<Token>),
}

/// A trace event emitted by the implementation stack. The `VS`-interface
/// events carry both the unique message identifier (for the timed
/// property checkers) and the payload (for the Lemma 4.2 cause checker);
/// `Bcast`/`Brcv` are the `TO` client interface.
#[derive(Clone, PartialEq, Eq)]
pub enum ImplEvent {
    /// `newview(v)_p`.
    NewView {
        /// The installing processor.
        p: ProcId,
        /// The installed view.
        v: View,
    },
    /// `gpsnd(m)_p`.
    GpSnd {
        /// The sender.
        p: ProcId,
        /// Unique message identifier.
        mid: u64,
        /// The payload.
        m: AppMsg,
    },
    /// `gprcv(m)_{p,q}`.
    GpRcv {
        /// The original sender.
        src: ProcId,
        /// The receiver.
        dst: ProcId,
        /// Unique message identifier.
        mid: u64,
        /// The payload.
        m: AppMsg,
    },
    /// `safe(m)_{p,q}`.
    Safe {
        /// The original sender.
        src: ProcId,
        /// The receiver of the indication.
        dst: ProcId,
        /// Unique message identifier.
        mid: u64,
        /// The payload.
        m: AppMsg,
    },
    /// `bcast(a)_p` — the TO client submits a value.
    Bcast {
        /// Submitting location.
        p: ProcId,
        /// The data value.
        a: Value,
    },
    /// `brcv(a)_{q,p}` — the TO service delivers a value.
    Brcv {
        /// Origin of the value.
        src: ProcId,
        /// Receiving location.
        dst: ProcId,
        /// The data value.
        a: Value,
    },
}

impl fmt::Debug for ImplEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImplEvent::NewView { p, v } => write!(f, "newview({v})_{p}"),
            ImplEvent::GpSnd { p, mid, m } => write!(f, "gpsnd#{mid}({m:?})_{p}"),
            ImplEvent::GpRcv { src, dst, mid, m } => {
                write!(f, "gprcv#{mid}({m:?})_{src},{dst}")
            }
            ImplEvent::Safe { src, dst, mid, m } => {
                write!(f, "safe#{mid}({m:?})_{src},{dst}")
            }
            ImplEvent::Bcast { p, a } => write!(f, "bcast({a:?})_{p}"),
            ImplEvent::Brcv { src, dst, a } => write!(f, "brcv({a:?})_{src},{dst}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_has_zero_safe_prefix() {
        let v = View::new(ViewId::new(1, ProcId(0)), ProcId::range(3));
        let t = Token::new(&v);
        assert_eq!(t.safe_prefix(), 0);
        assert_eq!(t.delivered.len(), 3);
    }

    #[test]
    fn safe_prefix_is_the_minimum() {
        let v = View::new(ViewId::new(1, ProcId(0)), ProcId::range(2));
        let mut t = Token::new(&v);
        t.delivered.insert(ProcId(0), 5);
        t.delivered.insert(ProcId(1), 3);
        assert_eq!(t.safe_prefix(), 3);
    }
}
