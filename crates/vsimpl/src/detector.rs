//! Adaptive accrual-style failure detection behind a policy seam.
//!
//! The paper's Section 8 membership sketch detects token loss with a
//! *fixed* timeout `π + (n+3)δ` derived from the assumed channel bound
//! δ. On a real network whose delays drift near that bound, the fixed
//! timeout thrashes: every late token triggers a view formation, the
//! formation resets the ring, and the group pays a full stabilization
//! round for a frame that was merely slow. Accrual failure detectors
//! (φ-detectors) replace the constant with a *measured* model of the
//! inter-arrival distribution: suspicion grows continuously with the
//! current silence relative to what has actually been observed, so the
//! detection threshold tracks the network instead of the spec sheet.
//!
//! This module keeps both worlds behind [`DetectorPolicy`]:
//!
//! - [`DetectorPolicy::Fixed`] (the default everywhere) preserves the
//!   paper's timers bit for bit — same timeouts, same wire behavior,
//!   same simulation digests.
//! - [`DetectorPolicy::Adaptive`] computes the token-loss timeout from
//!   an [`AccrualEstimator`] over the measured inter-arrival gaps of
//!   contiguous token receipts, clamped to `[fixed, cap_factor × fixed]`
//!   — the adaptive detector only ever *loosens* relative to the paper's
//!   derivation, so a genuinely crashed peer is still detected within a
//!   bounded multiple of the fixed deadline.
//!
//! Everything here is integer arithmetic over virtual milliseconds: no
//! floats, no wall clocks, no hashing — the same scenario replays to the
//! same digest on any machine and under any worker count, which is the
//! contract the deterministic simulation harness (`gcs-sim`) enforces.

use gcs_model::{ProcId, Time};
use std::collections::{BTreeMap, VecDeque};

/// Tuning for the adaptive accrual detector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccrualConfig {
    /// How many inter-arrival samples each estimator retains. Old
    /// samples age out, so a timeout widened by a past disturbance
    /// re-tightens once the network has been quiet for a full window.
    pub window: usize,
    /// Minimum samples before the measured estimate is trusted; below
    /// this the detector behaves exactly like the fixed policy
    /// (cold-start safety).
    pub min_samples: usize,
    /// Safety margin applied to the tail estimate, in percent (200 =
    /// suspect only after twice the largest plausible gap).
    pub margin_pct: u64,
    /// Upper clamp on the adaptive timeout, as a multiple of the fixed
    /// timeout: a real crash is detected within `cap_factor ×` the
    /// paper's deadline no matter what the estimator has absorbed.
    pub cap_factor: Time,
}

impl Default for AccrualConfig {
    fn default() -> Self {
        AccrualConfig { window: 16, min_samples: 4, margin_pct: 200, cap_factor: 6 }
    }
}

/// Which failure-detection policy a node runs (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectorPolicy {
    /// The paper's fixed `π + (n+3)δ` token-loss timeout. The default:
    /// wire behavior, benchmarks, and simulation digests are identical
    /// to the pre-seam protocol.
    Fixed,
    /// Accrual detection from measured inter-arrival gaps.
    Adaptive(AccrualConfig),
}

impl DetectorPolicy {
    /// The adaptive policy with default tuning.
    pub fn adaptive() -> DetectorPolicy {
        DetectorPolicy::Adaptive(AccrualConfig::default())
    }

    /// Whether this is the adaptive policy.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, DetectorPolicy::Adaptive(_))
    }
}

/// Integer square root (largest `r` with `r² ≤ v`), Newton's method.
fn isqrt(v: u64) -> u64 {
    if v < 2 {
        return v;
    }
    let mut x = v;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

/// A windowed estimator of one inter-arrival distribution, in integer
/// milliseconds.
///
/// [`AccrualEstimator::observe`] records the gap since the previous
/// arrival; [`AccrualEstimator::tail_estimate`] answers "how long a gap
/// is still plausible?" as `max(largest windowed gap, mean + 4σ)` — the
/// integer analog of the φ-detector's distribution tail. Suspicion is
/// then the current silence scaled against that estimate
/// ([`AccrualEstimator::suspicion_millis`]): 1000 means the silence has
/// reached the tail estimate, 2000 twice it, and so on, growing
/// monotonically while the silence lasts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccrualEstimator {
    samples: VecDeque<Time>,
    window: usize,
    last: Option<Time>,
}

impl AccrualEstimator {
    /// An empty estimator retaining at most `window` samples.
    pub fn new(window: usize) -> AccrualEstimator {
        AccrualEstimator { samples: VecDeque::new(), window: window.max(1), last: None }
    }

    /// Records an arrival at `now`: the gap since the previous arrival
    /// becomes a sample (the first arrival only anchors).
    pub fn observe(&mut self, now: Time) {
        if let Some(last) = self.last {
            self.push_gap(now.saturating_sub(last));
        }
        self.last = Some(now);
    }

    /// Re-anchors the gap baseline at `now` without recording a sample —
    /// used across view installations, so formation time is not counted
    /// as an inter-arrival gap.
    pub fn reanchor(&mut self, now: Time) {
        self.last = Some(now);
    }

    /// Records a *censored* observation: the arrival never came, but a
    /// gap of at least `gap` ms was genuinely observed before the
    /// detector gave up. Feeding the timeout back in on every
    /// timeout-triggered formation gives the estimator RTO-style
    /// backoff: a disturbance the current estimate undershoots widens
    /// the next timeout instead of tripping at the same threshold
    /// forever.
    pub fn observe_censored(&mut self, gap: Time) {
        self.push_gap(gap);
    }

    fn push_gap(&mut self, gap: Time) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(gap);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the windowed samples (0 when empty).
    pub fn mean(&self) -> Time {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.iter().sum::<Time>() / self.samples.len() as Time
    }

    /// Integer standard deviation of the windowed samples.
    pub fn stddev(&self) -> Time {
        let k = self.samples.len() as Time;
        if k < 2 {
            return 0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|&s| {
                let d = s.abs_diff(mean);
                d.saturating_mul(d)
            })
            .fold(0u64, u64::saturating_add)
            / k;
        isqrt(var)
    }

    /// Largest windowed gap (0 when empty).
    pub fn max_gap(&self) -> Time {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// The tail estimate `max(max_gap, mean + 4σ)`, or `None` with
    /// fewer than `min_samples` samples (cold start).
    pub fn tail_estimate(&self, min_samples: usize) -> Option<Time> {
        if self.samples.len() < min_samples.max(1) {
            return None;
        }
        Some(self.max_gap().max(self.mean().saturating_add(4 * self.stddev())).max(1))
    }

    /// Suspicion of the silence at `now`, in per-mille of the estimate:
    /// `1000 × elapsed / estimate`. With a cold estimator the
    /// `fallback_estimate` (the fixed-policy timeout) scales instead.
    /// Monotone in `now` for a fixed estimator state.
    pub fn suspicion_millis(&self, now: Time, fallback_estimate: Time, min_samples: usize) -> u64 {
        let Some(last) = self.last else { return 0 };
        let elapsed = now.saturating_sub(last);
        let est = self.tail_estimate(min_samples).unwrap_or(fallback_estimate).max(1);
        elapsed.saturating_mul(1000) / est
    }
}

/// Effective detector-derived timing bounds, exported so the b/d
/// monitors can widen the paper's formulas to what the detector is
/// actually enforcing: `δ̂` solves `timeout = π + (n+3)δ̂`, so
/// `b̂ = 9δ̂ + max{π̂ + (n+3)δ̂, μ}` again covers detection plus
/// formation, and `d̂ = 2π̂ + nδ̂` covers two rotations at the
/// learned pace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorBounds {
    /// Effective channel-delay bound δ̂, in ms (≥ the configured δ).
    pub delta_hat_ms: Time,
    /// Effective token period π̂, in ms (≥ the configured π).
    pub pi_hat_ms: Time,
}

/// The per-node adaptive detector state: a token-gap estimator driving
/// the loss timeout, plus per-peer arrival estimators for suspicion
/// diagnostics.
#[derive(Clone, Debug)]
pub struct AdaptiveDetector {
    cfg: AccrualConfig,
    /// Gaps between contiguous token receipts — the ring heartbeat as
    /// this node experiences it.
    token_gaps: AccrualEstimator,
    /// Per-peer inter-arrival gaps over *any* message kind.
    peer_gaps: BTreeMap<ProcId, AccrualEstimator>,
}

impl AdaptiveDetector {
    /// A fresh detector.
    pub fn new(cfg: AccrualConfig) -> AdaptiveDetector {
        let window = cfg.window;
        AdaptiveDetector {
            cfg,
            token_gaps: AccrualEstimator::new(window),
            peer_gaps: BTreeMap::new(),
        }
    }

    /// The tuning this detector runs with.
    pub fn config(&self) -> &AccrualConfig {
        &self.cfg
    }

    /// Records a contiguous token receipt at `now`.
    pub fn observe_token(&mut self, now: Time) {
        self.token_gaps.observe(now);
    }

    /// Re-anchors the token-gap baseline (on view installation).
    pub fn reanchor_token(&mut self, now: Time) {
        self.token_gaps.reanchor(now);
    }

    /// Records a timeout-triggered formation: the `elapsed` silence is a
    /// censored gap observation (see
    /// [`AccrualEstimator::observe_censored`]).
    pub fn observe_timeout(&mut self, elapsed: Time) {
        self.token_gaps.observe_censored(elapsed);
    }

    /// Records any message arrival from `peer` at `now`.
    pub fn observe_peer(&mut self, peer: ProcId, now: Time) {
        self.peer_gaps
            .entry(peer)
            .or_insert_with(|| AccrualEstimator::new(self.cfg.window))
            .observe(now);
    }

    /// Per-peer suspicion at `now` in per-mille of that peer's tail
    /// estimate (`fallback` scales a cold estimator); `None` when the
    /// peer was never heard from.
    pub fn peer_suspicion_millis(&self, peer: ProcId, now: Time, fallback: Time) -> Option<u64> {
        let est = self.peer_gaps.get(&peer)?;
        Some(est.suspicion_millis(now, fallback, self.cfg.min_samples))
    }

    /// The token-gap estimator (for tests and diagnostics).
    pub fn token_estimator(&self) -> &AccrualEstimator {
        &self.token_gaps
    }

    /// The adaptive token-loss timeout given the fixed-policy timeout
    /// `fixed` (stagger excluded): the margined tail estimate, clamped
    /// to `[fixed, cap_factor × fixed]`. Cold estimators fall back to
    /// `fixed` exactly.
    pub fn token_timeout(&self, fixed: Time) -> Time {
        let cap = fixed.saturating_mul(self.cfg.cap_factor.max(1));
        match self.token_gaps.tail_estimate(self.cfg.min_samples) {
            Some(est) => (est.saturating_mul(self.cfg.margin_pct.max(100)) / 100).clamp(fixed, cap),
            None => fixed,
        }
    }

    /// The effective bounds the current timeout implies (see
    /// [`DetectorBounds`]): `δ̂ = ⌈(timeout − π) / (n+3)⌉` clamped to at
    /// least the configured δ, and `π̂ = π` (the launch period itself is
    /// not adapted).
    pub fn bounds(&self, fixed: Time, pi: Time, n: u32, delta: Time) -> DetectorBounds {
        let timeout = self.token_timeout(fixed);
        let span = timeout.saturating_sub(pi);
        let denom = n as Time + 3;
        let delta_hat = span.div_ceil(denom).max(delta);
        DetectorBounds { delta_hat_ms: delta_hat, pi_hat_ms: pi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_exact_floor() {
        for v in [0u64, 1, 2, 3, 4, 8, 9, 15, 16, 17, 99, 100, 1 << 40] {
            let r = isqrt(v);
            assert!(r * r <= v, "v={v}");
            assert!((r + 1) * (r + 1) > v, "v={v}");
        }
    }

    #[test]
    fn cold_estimator_falls_back_to_fixed() {
        let d = AdaptiveDetector::new(AccrualConfig::default());
        assert_eq!(d.token_timeout(180), 180);
        let b = d.bounds(180, 100, 5, 10);
        assert_eq!(b, DetectorBounds { delta_hat_ms: 10, pi_hat_ms: 100 });
    }

    #[test]
    fn warm_estimator_loosens_but_stays_capped() {
        let mut d = AdaptiveDetector::new(AccrualConfig::default());
        let mut t = 0;
        for _ in 0..8 {
            t += 130;
            d.observe_token(t);
        }
        // Tail ≈ 130, margin 200% → 260; floor is the fixed timeout.
        assert_eq!(d.token_timeout(180), 260);
        assert_eq!(d.token_timeout(300), 300, "never below the fixed timeout");
        // A huge censored gap saturates at the cap.
        d.observe_timeout(1_000_000);
        assert_eq!(d.token_timeout(180), 6 * 180);
    }

    #[test]
    fn censored_observation_backs_off() {
        let mut d = AdaptiveDetector::new(AccrualConfig::default());
        for i in 1..=6u64 {
            d.observe_token(i * 100);
        }
        let before = d.token_timeout(180);
        d.observe_timeout(before);
        let after = d.token_timeout(180);
        assert!(after > before, "timeout must widen after a timeout-triggered formation");
    }

    #[test]
    fn window_ages_out_old_disturbances() {
        let cfg = AccrualConfig { window: 8, ..AccrualConfig::default() };
        let mut d = AdaptiveDetector::new(cfg);
        d.observe_token(0);
        d.observe_censored_n(900, 1);
        // Eight quiet gaps push the 900 ms outlier out of the window.
        // (A censored sample does not move the anchor, so re-anchor as a
        // post-formation install would.)
        d.reanchor_token(1000);
        let mut t = 1000;
        for _ in 0..8 {
            t += 100;
            d.observe_token(t);
        }
        assert!(d.token_timeout(180) <= 260, "old outlier must age out");
    }

    impl AdaptiveDetector {
        fn observe_censored_n(&mut self, gap: Time, n: usize) {
            for _ in 0..n {
                self.token_gaps.observe_censored(gap);
            }
        }
    }

    #[test]
    fn suspicion_grows_with_silence_and_resets_on_arrival() {
        let mut e = AccrualEstimator::new(16);
        for i in 1..=6u64 {
            e.observe(i * 100);
        }
        let s1 = e.suspicion_millis(700, 180, 4);
        let s2 = e.suspicion_millis(900, 180, 4);
        assert!(s2 > s1, "suspicion must grow while silent");
        e.observe(900);
        assert_eq!(e.suspicion_millis(900, 180, 4), 0, "arrival resets the silence");
    }

    #[test]
    fn peer_suspicion_tracks_each_peer_separately() {
        let mut d = AdaptiveDetector::new(AccrualConfig::default());
        for i in 1..=5u64 {
            d.observe_peer(ProcId(1), i * 50);
            d.observe_peer(ProcId(2), i * 200);
        }
        let s1 = d.peer_suspicion_millis(ProcId(1), 1400, 180).unwrap();
        let s2 = d.peer_suspicion_millis(ProcId(2), 1400, 180).unwrap();
        assert!(s1 > s2, "same silence is more suspicious for a chattier peer");
        assert_eq!(d.peer_suspicion_millis(ProcId(9), 1400, 180), None);
    }

    #[test]
    fn bounds_cover_the_adaptive_timeout() {
        let mut d = AdaptiveDetector::new(AccrualConfig::default());
        for i in 1..=8u64 {
            d.observe_token(i * 250);
        }
        let (fixed, pi, n, delta) = (180, 100, 5u32, 10);
        let b = d.bounds(fixed, pi, n, delta);
        // π + (n+3)·δ̂ must reach the enforced timeout.
        assert!(b.pi_hat_ms + (n as Time + 3) * b.delta_hat_ms >= d.token_timeout(fixed));
        assert!(b.delta_hat_ms >= delta);
    }
}
