//! Converters from recorded implementation traces to the shapes the
//! checkers of `gcs-core` consume.

use crate::wire::ImplEvent;
use gcs_core::msg::AppMsg;
use gcs_core::properties::{ToObs, VsObs};
use gcs_core::vs_machine::VsAction;
use gcs_ioa::TimedTrace;
use gcs_netsim::TraceEvent;

/// The untimed `VS` action sequence of a trace (for the Lemma 4.2 cause
/// checker, [`gcs_core::cause::check_trace`]).
pub fn vs_actions(trace: &TimedTrace<TraceEvent<ImplEvent>>) -> Vec<VsAction<AppMsg>> {
    trace
        .events()
        .iter()
        .filter_map(|ev| match &ev.action {
            TraceEvent::App(ImplEvent::NewView { p, v }) => {
                Some(VsAction::NewView { p: *p, v: v.clone() })
            }
            TraceEvent::App(ImplEvent::GpSnd { p, m, .. }) => {
                Some(VsAction::GpSnd { p: *p, m: m.clone() })
            }
            TraceEvent::App(ImplEvent::GpRcv { src, dst, m, .. }) => {
                Some(VsAction::GpRcv { src: *src, dst: *dst, m: m.clone() })
            }
            TraceEvent::App(ImplEvent::Safe { src, dst, m, .. }) => {
                Some(VsAction::Safe { src: *src, dst: *dst, m: m.clone() })
            }
            _ => None,
        })
        .collect()
}

/// The timed `VsObs` trace (for [`gcs_core::properties::check_vs_property`]).
pub fn vs_obs(trace: &TimedTrace<TraceEvent<ImplEvent>>) -> TimedTrace<VsObs> {
    trace
        .events()
        .iter()
        .filter_map(|ev| {
            let obs = match &ev.action {
                TraceEvent::App(ImplEvent::NewView { p, v }) => {
                    VsObs::NewView { p: *p, v: v.clone() }
                }
                TraceEvent::App(ImplEvent::GpSnd { p, mid, .. }) => {
                    VsObs::GpSnd { p: *p, mid: *mid }
                }
                TraceEvent::App(ImplEvent::GpRcv { src, dst, mid, .. }) => {
                    VsObs::GpRcv { src: *src, dst: *dst, mid: *mid }
                }
                TraceEvent::App(ImplEvent::Safe { src, dst, mid, .. }) => {
                    VsObs::Safe { src: *src, dst: *dst, mid: *mid }
                }
                TraceEvent::Fail { subject, status } => {
                    VsObs::Fail { subject: *subject, status: *status }
                }
                _ => return None,
            };
            Some((ev.time, obs))
        })
        .collect()
}

/// The timed `ToObs` trace (for [`gcs_core::properties::check_to_property`]
/// and `TO-machine` trace conformance).
pub fn to_obs(trace: &TimedTrace<TraceEvent<ImplEvent>>) -> TimedTrace<ToObs> {
    trace
        .events()
        .iter()
        .filter_map(|ev| {
            let obs = match &ev.action {
                TraceEvent::App(ImplEvent::Bcast { p, a }) => ToObs::Bcast { p: *p, a: a.clone() },
                TraceEvent::App(ImplEvent::Brcv { src, dst, a }) => {
                    ToObs::Brcv { src: *src, dst: *dst, a: a.clone() }
                }
                TraceEvent::Fail { subject, status } => {
                    ToObs::Fail { subject: *subject, status: *status }
                }
                _ => return None,
            };
            Some((ev.time, obs))
        })
        .collect()
}
