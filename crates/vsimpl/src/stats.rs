//! Trace statistics: aggregate metrics extracted from a recorded
//! implementation trace, shared by the experiments, benches, and the CLI.

use crate::wire::ImplEvent;
use gcs_core::msg::AppMsg;
use gcs_ioa::TimedTrace;
#[cfg(test)]
use gcs_model::ProcId;
use gcs_model::{Time, Value};
use gcs_netsim::TraceEvent;
use std::collections::BTreeMap;

/// Aggregate metrics of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Client submissions.
    pub bcasts: usize,
    /// Client deliveries (across all processors).
    pub brcvs: usize,
    /// View installations.
    pub newviews: usize,
    /// Distinct views installed anywhere.
    pub distinct_views: usize,
    /// Group messages delivered (`gprcv`).
    pub gprcvs: usize,
    /// Safe indications.
    pub safes: usize,
    /// State-exchange summaries sent.
    pub summaries_sent: usize,
    /// Total labels carried in state-exchange summaries.
    pub summary_payload: usize,
    /// Per-value full-delivery latency (bcast → last brcv), for values
    /// delivered to every processor that delivered anything.
    pub delivery_latencies: Vec<Time>,
    /// bcast → first brcv anywhere, per delivered value.
    pub first_delivery_latencies: Vec<Time>,
}

impl TraceStats {
    /// Computes the statistics of a trace. `n` is the processor count
    /// (full delivery = delivery at all `n`).
    pub fn from_trace(trace: &TimedTrace<TraceEvent<ImplEvent>>, n: u32) -> Self {
        let mut s = TraceStats::default();
        let mut views = std::collections::BTreeSet::new();
        let mut sent: BTreeMap<Value, Time> = BTreeMap::new();
        let mut first: BTreeMap<Value, Time> = BTreeMap::new();
        let mut last: BTreeMap<Value, Time> = BTreeMap::new();
        let mut count: BTreeMap<Value, u32> = BTreeMap::new();
        for ev in trace.events() {
            match &ev.action {
                TraceEvent::App(ImplEvent::Bcast { a, .. }) => {
                    s.bcasts += 1;
                    sent.insert(a.clone(), ev.time);
                }
                TraceEvent::App(ImplEvent::Brcv { a, .. }) => {
                    s.brcvs += 1;
                    first.entry(a.clone()).or_insert(ev.time);
                    last.insert(a.clone(), ev.time);
                    *count.entry(a.clone()).or_insert(0) += 1;
                }
                TraceEvent::App(ImplEvent::NewView { v, .. }) => {
                    s.newviews += 1;
                    views.insert(v.id);
                }
                TraceEvent::App(ImplEvent::GpRcv { .. }) => s.gprcvs += 1,
                TraceEvent::App(ImplEvent::Safe { .. }) => s.safes += 1,
                TraceEvent::App(ImplEvent::GpSnd { m: AppMsg::Summary(x), .. }) => {
                    s.summaries_sent += 1;
                    s.summary_payload += x.con.len();
                }
                _ => {}
            }
        }
        s.distinct_views = views.len() + 1; // plus the initial view
        for (a, &t0) in &sent {
            if let Some(&tf) = first.get(a) {
                s.first_delivery_latencies.push(tf.saturating_sub(t0));
            }
            if count.get(a) == Some(&n) {
                s.delivery_latencies.push(last[a].saturating_sub(t0));
            }
        }
        s
    }

    /// Mean of a latency series (0 when empty).
    pub fn mean(series: &[Time]) -> f64 {
        if series.is_empty() {
            0.0
        } else {
            series.iter().sum::<Time>() as f64 / series.len() as f64
        }
    }

    /// A percentile (nearest-rank) of a latency series (0 when empty).
    pub fn percentile(series: &[Time], p: f64) -> Time {
        if series.is_empty() {
            return 0;
        }
        let mut sorted = series.to_vec();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }
}

/// Convenience over a [`crate::Stack`] after a run.
pub fn stack_stats(stack: &crate::Stack) -> TraceStats {
    TraceStats::from_trace(stack.trace(), stack.config().n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stack, StackConfig};

    #[test]
    fn stats_of_a_stable_run() {
        let mut stack = Stack::new(StackConfig::standard(3, 5, 3));
        let pi = stack.config().pi;
        for i in 0..5u64 {
            stack.schedule_bcast(4 * pi + i * 10, ProcId((i % 3) as u32));
        }
        stack.run_until(4 * pi + 60 * pi);
        let s = stack_stats(&stack);
        assert_eq!(s.bcasts, 5);
        assert_eq!(s.brcvs, 15);
        assert_eq!(s.newviews, 0, "stable run installs no views");
        assert_eq!(s.distinct_views, 1);
        assert_eq!(s.delivery_latencies.len(), 5);
        assert!(TraceStats::mean(&s.delivery_latencies) > 0.0);
        assert!(
            TraceStats::percentile(&s.delivery_latencies, 100.0)
                >= TraceStats::percentile(&s.delivery_latencies, 50.0)
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let series = vec![10, 20, 30, 40];
        assert_eq!(TraceStats::percentile(&series, 50.0), 20);
        assert_eq!(TraceStats::percentile(&series, 100.0), 40);
        assert_eq!(TraceStats::percentile(&series, 1.0), 10);
        assert_eq!(TraceStats::percentile(&[], 50.0), 0);
    }
}
