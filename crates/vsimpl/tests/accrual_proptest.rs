//! Property-based tests of the accrual failure-detection estimator:
//! the laws the adaptive detector's safety argument rests on — cold
//! starts are indistinguishable from the fixed policy, the adaptive
//! timeout never leaves its `[fixed, cap × fixed]` clamp no matter what
//! arrival history it absorbed, and suspicion grows monotonically with
//! silence.

use gcs_vsimpl::{AccrualConfig, AccrualEstimator, AdaptiveDetector};
use proptest::prelude::*;

/// An arbitrary arrival history: positive inter-arrival gaps (the
/// estimator never sees wall-clock time, only a monotone virtual
/// clock).
fn arb_gaps(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..2_000, 0..=max_len)
}

/// Replays `gaps` into a fresh detector as token observations starting
/// at t = 0, interleaving censored (timeout) observations where
/// `censor` says so, and returns it with the final virtual time.
fn detector_from(gaps: &[u64], censor: &[bool]) -> (AdaptiveDetector, u64) {
    let mut d = AdaptiveDetector::new(AccrualConfig::default());
    let mut now = 0u64;
    d.observe_token(now);
    for (i, &g) in gaps.iter().enumerate() {
        now += g;
        if censor.get(i).copied().unwrap_or(false) {
            d.observe_timeout(g);
            d.reanchor_token(now);
        } else {
            d.observe_token(now);
        }
    }
    (d, now)
}

proptest! {
    /// Suspicion of a silent peer is monotone in elapsed time: once the
    /// estimator stops hearing arrivals, longer silence can only raise
    /// (never lower) the suspicion level. This is the property that
    /// makes accrual thresholds meaningful as *deadlines*.
    #[test]
    fn suspicion_is_monotone_in_silence(
        gaps in arb_gaps(24),
        dt1 in 0u64..5_000,
        dt2 in 0u64..5_000,
    ) {
        let mut est = AccrualEstimator::new(16);
        let mut now = 0u64;
        est.observe(now);
        for g in &gaps {
            now += g;
            est.observe(now);
        }
        let (early, late) = (now + dt1.min(dt2), now + dt1.max(dt2));
        let s1 = est.suspicion_millis(early, 180, 4);
        let s2 = est.suspicion_millis(late, 180, 4);
        prop_assert!(s1 <= s2, "suspicion fell with more silence: {s1} -> {s2}");
    }

    /// The adaptive token timeout is bounded whatever the history —
    /// jitter, spikes, censored timeouts — it never undercuts the fixed
    /// deadline (safety floor) and never exceeds `cap_factor × fixed`
    /// (liveness ceiling).
    #[test]
    fn timeout_stays_inside_the_clamp(
        gaps in arb_gaps(64),
        censor in prop::collection::vec(any::<bool>(), 0..=64),
        fixed in 1u64..10_000,
    ) {
        let (d, _) = detector_from(&gaps, &censor);
        let t = d.token_timeout(fixed);
        let cap = fixed * d.config().cap_factor;
        prop_assert!(t >= fixed, "timeout {t} fell below the fixed floor {fixed}");
        prop_assert!(t <= cap, "timeout {t} exceeded the cap {cap}");
    }

    /// Cold start: with fewer than `min_samples` gap observations the
    /// detector is *exactly* the fixed policy — same timeout, same
    /// effective bounds. This is what keeps short-lived nodes and fresh
    /// incarnations byte-identical to the fixed-policy wire behavior.
    #[test]
    fn cold_start_is_exactly_fixed(
        gaps in arb_gaps(3), // min_samples is 4: up to 3 gaps stays cold
        fixed in 1u64..10_000,
    ) {
        prop_assume!(gaps.len() < AccrualConfig::default().min_samples);
        let (d, _) = detector_from(&gaps, &[]);
        prop_assert_eq!(d.token_timeout(fixed), fixed);
        // With the deadline the standard config derives (π + (n+3)δ =
        // 180 for n = 5, δ = 10), a cold detector's effective bounds
        // are exactly the configured constants.
        let b = d.bounds(180, 100, 5, 10);
        prop_assert_eq!(b.delta_hat_ms, 10, "cold δ̂ must be the configured δ");
        prop_assert_eq!(b.pi_hat_ms, 100, "π̂ is never adapted");
    }

    /// The sliding window bounds memory: however long the history, at
    /// most `window` samples are retained, and the tail estimate always
    /// dominates the windowed mean (it is max(max_gap, mean + 4σ)).
    #[test]
    fn window_is_bounded_and_tail_dominates_mean(
        gaps in arb_gaps(200),
    ) {
        let mut est = AccrualEstimator::new(16);
        let mut now = 0u64;
        est.observe(now);
        for g in &gaps {
            now += g;
            est.observe(now);
        }
        prop_assert!(est.len() <= 16, "window overflow: {}", est.len());
        if let Some(tail) = est.tail_estimate(4) {
            prop_assert!(tail >= est.mean());
            prop_assert!(tail >= est.max_gap());
        }
    }

    /// Effective bounds are conservative: δ̂ never undercuts the
    /// configured δ, π̂ is exactly the configured π, and δ̂ is large
    /// enough that re-deriving the timeout from the bounds formula
    /// `π + (n+3)δ̂` covers the actual adaptive timeout.
    #[test]
    fn effective_bounds_cover_the_timeout(
        gaps in arb_gaps(64),
        censor in prop::collection::vec(any::<bool>(), 0..=64),
    ) {
        let (d, _) = detector_from(&gaps, &censor);
        let (fixed, pi, n, delta) = (180u64, 100u64, 5u32, 10u64);
        let b = d.bounds(fixed, pi, n, delta);
        prop_assert!(b.delta_hat_ms >= delta);
        prop_assert_eq!(b.pi_hat_ms, pi);
        let implied = pi + (n as u64 + 3) * b.delta_hat_ms;
        prop_assert!(
            implied >= d.token_timeout(fixed),
            "bounds imply {implied} < actual timeout {}",
            d.token_timeout(fixed)
        );
    }
}
