//! Protocol-level unit tests of the VS node, driving its handlers
//! directly with a [`CollectedEffects`] context: token handling across
//! view changes, membership races, and join refusal.

use gcs_model::{ProcId, View, ViewId};
use gcs_netsim::{CollectedEffects, Process};
use gcs_vsimpl::timed_vstoto::EchoClient;
use gcs_vsimpl::VsNode;
use gcs_vsimpl::{ImplEvent, ProtoConfig, Token, Wire};

type Fx = CollectedEffects<Wire, ImplEvent>;

fn make_node(id: u32) -> (VsNode<EchoClient>, Fx) {
    let cfg = ProtoConfig::standard(3, 5);
    let mut node = VsNode::new(ProcId(id), cfg, EchoClient::new(id));
    let mut fx = Fx::new(0);
    node.on_start(&mut fx.ctx());
    fx.sends.clear();
    fx.emits.clear();
    (node, fx)
}

fn join(node: &mut VsNode<EchoClient>, fx: &mut Fx, epoch: u64, origin: u32, members: &[u32]) {
    let v =
        View::new(ViewId::new(epoch, ProcId(origin)), members.iter().map(|&i| ProcId(i)).collect());
    node.on_message(ProcId(origin), Wire::Join { view: v }, &mut fx.ctx());
}

#[test]
fn stale_token_is_dropped() {
    let (mut node, mut fx) = make_node(1);
    // Move to a newer view, then deliver a token for the initial view.
    join(&mut node, &mut fx, 1, 0, &[0, 1]);
    assert!(node.current_view().is_some_and(|v| v.id.epoch == 1));
    fx.sends.clear();
    fx.emits.clear();
    let stale = Token::new(&View::initial(ProcId::range(3)));
    node.on_message(ProcId(0), Wire::Token(Box::new(stale)), &mut fx.ctx());
    assert!(fx.sends.is_empty(), "stale token must not be forwarded: {:?}", fx.sends);
    assert!(fx.emits.is_empty(), "stale token must not deliver anything");
}

#[test]
fn early_token_waits_for_join_then_processes() {
    let (mut node, mut fx) = make_node(2);
    // A token for a future view arrives before the join announcing it.
    let future = View::new(ViewId::new(1, ProcId(0)), ProcId::range(3));
    let tok = Token::new(&future);
    node.on_message(ProcId(0), Wire::Token(Box::new(tok)), &mut fx.ctx());
    assert!(fx.sends.is_empty(), "future token must be held, not forwarded");
    // The join arrives; the held token is processed and forwarded to the
    // ring successor (p0, wrapping around from p2).
    join(&mut node, &mut fx, 1, 0, &[0, 1, 2]);
    let forwarded = fx.sends.iter().any(|(to, m)| *to == ProcId(0) && matches!(m, Wire::Token(_)));
    assert!(forwarded, "held token must be processed on install: {:?}", fx.sends);
}

#[test]
fn join_below_accepted_is_refused() {
    let (mut node, mut fx) = make_node(1);
    // Accept a call for epoch 5.
    node.on_message(ProcId(0), Wire::Call { viewid: ViewId::new(5, ProcId(0)) }, &mut fx.ctx());
    assert!(
        fx.sends.iter().any(|(to, m)| *to == ProcId(0) && matches!(m, Wire::Accept { .. })),
        "call must be accepted: {:?}",
        fx.sends
    );
    // A join for a lower view must now be refused.
    let before = node.current_view().cloned();
    join(&mut node, &mut fx, 3, 2, &[1, 2]);
    assert_eq!(node.current_view().cloned(), before, "lower join must not install");
    // The accepted view's join is installed.
    join(&mut node, &mut fx, 5, 0, &[0, 1]);
    assert!(node.current_view().is_some_and(|v| v.id == ViewId::new(5, ProcId(0))));
}

#[test]
fn stale_calls_are_ignored() {
    let (mut node, mut fx) = make_node(1);
    node.on_message(ProcId(0), Wire::Call { viewid: ViewId::new(5, ProcId(0)) }, &mut fx.ctx());
    fx.sends.clear();
    // Same and lower viewids draw no accept.
    for viewid in [ViewId::new(5, ProcId(0)), ViewId::new(2, ProcId(2))] {
        node.on_message(ProcId(2), Wire::Call { viewid }, &mut fx.ctx());
    }
    assert!(fx.sends.is_empty(), "stale calls must not be accepted: {:?}", fx.sends);
}

#[test]
fn probe_from_member_does_not_trigger_formation() {
    let (mut node, mut fx) = make_node(1);
    // p0 is a member of the initial view {p0,p1,p2}: its probe is benign.
    node.on_message(ProcId(0), Wire::Probe, &mut fx.ctx());
    assert!(
        !fx.sends.iter().any(|(_, m)| matches!(m, Wire::Call { .. })),
        "member probe must not trigger a call: {:?}",
        fx.sends
    );
}

#[test]
fn probe_from_stranger_triggers_three_round_formation() {
    let (mut node, mut fx) = make_node(1);
    // Shrink to a view without p0, then probe from p0.
    join(&mut node, &mut fx, 1, 1, &[1, 2]);
    fx.sends.clear();
    fx.set_now(100);
    node.on_message(ProcId(0), Wire::Probe, &mut fx.ctx());
    let calls: Vec<&ProcId> =
        fx.sends.iter().filter(|(_, m)| matches!(m, Wire::Call { .. })).map(|(to, _)| to).collect();
    assert_eq!(calls.len(), 2, "call must go to every other processor: {:?}", fx.sends);
    // A deadline is scheduled (2δ + 1 = 11).
    assert!(fx.timers.iter().any(|(d, _)| *d == 11), "formation deadline: {:?}", fx.timers);
}

#[test]
fn newview_is_emitted_with_self_in_membership() {
    let (mut node, mut fx) = make_node(2);
    join(&mut node, &mut fx, 1, 0, &[0, 2]);
    let nv = fx.emits.iter().find_map(|e| match e {
        ImplEvent::NewView { p, v } => Some((*p, v.clone())),
        _ => None,
    });
    let (p, v) = nv.expect("newview emitted");
    assert_eq!(p, ProcId(2));
    assert!(v.contains(ProcId(2)));
    // A join that excludes us is ignored entirely.
    fx.emits.clear();
    join(&mut node, &mut fx, 9, 0, &[0, 1]);
    assert!(fx.emits.is_empty(), "foreign join must not install");
    assert_eq!(node.current_view().map(|v| v.id.epoch), Some(1));
}

#[test]
fn leader_launches_token_on_install() {
    // p0 is the leader of {0,1}: installing must emit a token launch
    // timer (delay 0) and hold the fresh token.
    let (mut node, mut fx) = make_node(0);
    fx.timers.clear();
    join(&mut node, &mut fx, 1, 1, &[0, 1]);
    assert!(
        fx.timers.iter().any(|(d, k)| *d == 0 && k & 0b111 == 2),
        "leader must schedule an immediate launch: {:?}",
        fx.timers
    );
    // Non-leader p1 installing the same view schedules no launch.
    let (mut n1, mut fx1) = make_node(1);
    fx1.timers.clear();
    join(&mut n1, &mut fx1, 1, 0, &[0, 1]);
    assert!(
        !fx1.timers.iter().any(|(_, k)| k & 0b111 == 2),
        "non-leader must not launch: {:?}",
        fx1.timers
    );
}
