//! Regression: the parallel seed fan-out must be invisible in the
//! results. For a fixed 16-seed set, the per-seed E5 (simulation
//! relation) and E6 (invariant suite) counts — and hence the aggregated
//! experiment tables — are bit-for-bit identical whether the seeds run
//! sequentially or sharded across any number of workers.

use gcs_core::adversary::SystemAdversary;
use gcs_harness::experiments::{e05, e06};
use gcs_harness::par_seeds_with;
use gcs_model::{Majority, QuorumSystem};
use std::sync::Arc;

const SEEDS: std::ops::Range<u64> = 0..16;

#[test]
fn e5_simulation_counts_identical_across_worker_counts() {
    let seeds: Vec<u64> = SEEDS.collect();
    let quorums: Arc<dyn QuorumSystem> = Arc::new(Majority::new(3));
    let adv = SystemAdversary::default();
    let f = |seed: u64| e05::seed_counts(3, &quorums, &adv, seed, 120);
    let sequential = par_seeds_with(&seeds, 1, f);
    assert!(sequential.iter().all(|&(checked, _)| checked > 0));
    for workers in [2, 5, 16] {
        assert_eq!(par_seeds_with(&seeds, workers, f), sequential, "{workers} workers");
    }
}

#[test]
fn e6_invariant_counts_identical_across_worker_counts() {
    let seeds: Vec<u64> = SEEDS.collect();
    let f = |seed: u64| e06::seed_counts(3, seed, 80);
    let sequential = par_seeds_with(&seeds, 1, f);
    assert!(sequential.iter().all(|counts| counts.iter().all(|&(checked, _)| checked > 0)));
    for workers in [2, 5, 16] {
        assert_eq!(par_seeds_with(&seeds, workers, f), sequential, "{workers} workers");
    }
}
