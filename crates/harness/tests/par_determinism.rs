//! Regression: the parallel seed fan-out must be invisible in the
//! results. For a fixed 16-seed set, the per-seed E5 (simulation
//! relation) and E6 (invariant suite) counts — and hence the aggregated
//! experiment tables — are bit-for-bit identical whether the seeds run
//! sequentially or sharded across any number of workers.

use gcs_core::adversary::SystemAdversary;
use gcs_harness::experiments::{e02, e03, e04, e05, e06, e07, e08, e09, e10, e11, e12, e13, e14};
use gcs_harness::par_seeds_with;
use gcs_harness::Table;
use gcs_model::{Majority, QuorumSystem};
use std::sync::Arc;

const SEEDS: std::ops::Range<u64> = 0..16;

#[test]
fn e5_simulation_counts_identical_across_worker_counts() {
    let seeds: Vec<u64> = SEEDS.collect();
    let quorums: Arc<dyn QuorumSystem> = Arc::new(Majority::new(3));
    let adv = SystemAdversary::default();
    let f = |seed: u64| e05::seed_counts(3, &quorums, &adv, seed, 120);
    let sequential = par_seeds_with(&seeds, 1, f);
    assert!(sequential.iter().all(|&(checked, _)| checked > 0));
    for workers in [2, 5, 16] {
        assert_eq!(par_seeds_with(&seeds, workers, f), sequential, "{workers} workers");
    }
}

#[test]
fn e6_invariant_counts_identical_across_worker_counts() {
    let seeds: Vec<u64> = SEEDS.collect();
    let f = |seed: u64| e06::seed_counts(3, seed, 80);
    let sequential = par_seeds_with(&seeds, 1, f);
    assert!(sequential.iter().all(|counts| counts.iter().all(|&(checked, _)| checked > 0)));
    for workers in [2, 5, 16] {
        assert_eq!(par_seeds_with(&seeds, workers, f), sequential, "{workers} workers");
    }
}

/// E12's two variants (independent stacks with per-variant configs) must
/// produce byte-identical rows whether they run sequentially or sharded
/// across workers.
#[test]
fn e12_variant_rows_identical_across_worker_counts() {
    let which: Vec<u64> = vec![0, 1];
    let f = |w: u64| e12::variant_row(w, true);
    let sequential = par_seeds_with(&which, 1, f);
    assert_eq!(sequential.len(), 2);
    assert_eq!(sequential[0][3], "✓");
    assert_eq!(sequential[1][3], "✓");
    for workers in [2, 8] {
        assert_eq!(par_seeds_with(&which, workers, f), sequential, "{workers} workers");
    }
}

/// Every experiment whose row computation now fans out through
/// `par_seeds` must produce the same table on every run: parallelism may
/// change scheduling but never content or row order.
#[test]
fn parallel_experiment_tables_are_stable_across_runs() {
    type TableRun = fn(bool) -> Vec<Table>;
    let runs: &[(&str, TableRun)] = &[
        ("e02", e02::run),
        ("e03", e03::run),
        ("e04", e04::run),
        ("e07", e07::run),
        ("e08", e08::run),
        ("e09", e09::run),
        ("e10", e10::run),
        ("e11", e11::run),
        ("e12", e12::run),
        ("e13", e13::run),
        ("e14", e14::run),
    ];
    for (name, run) in runs {
        let first = run(true);
        let second = run(true);
        assert_eq!(first.len(), second.len(), "{name}: table count changed");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.rows(), b.rows(), "{name}: rows differ between runs");
        }
    }
}
