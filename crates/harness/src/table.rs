//! Markdown-style result tables.

use std::fmt;

/// A result table: a title, a header row, data rows, and footnotes.
/// Renders as a GitHub-flavored markdown table so experiment output can
/// be pasted verbatim into `EXPERIMENTS.md`.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The data rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// A specific cell (row, column), for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

/// Shorthand for building a row of strings from heterogeneous values.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        &[$(format!("{}", $cell)),*]
    };
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths for alignment.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "### {}\n", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "\n> {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", &["a", "long header"]);
        t.row(row!["x", 42]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("### demo"));
        assert!(s.contains("| a | long header |"));
        assert!(s.contains("| x | 42"));
        assert!(s.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(row!["only one"]);
    }
}
