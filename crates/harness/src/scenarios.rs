//! Reusable failure/workload scenarios over the implementation stack.

use gcs_apps::Workload;
use gcs_model::failure::FailureScript;
use gcs_model::{ProcId, Time};
use gcs_vsimpl::{Stack, StackConfig};
use std::collections::BTreeSet;

/// A named scenario: a stack configuration plus a failure script and a
/// workload, with a run horizon.
pub struct Scenario {
    /// Short name for tables.
    pub name: &'static str,
    /// The stack configuration.
    pub config: StackConfig,
    /// The failure script.
    pub script: FailureScript,
    /// The workload.
    pub workload: Workload,
    /// Simulation horizon.
    pub horizon: Time,
    /// The set the conditional properties quantify over (stabilized,
    /// quorate side), with the stabilization already scripted.
    pub q: BTreeSet<ProcId>,
}

impl Scenario {
    /// Builds and runs the scenario, returning the stack at the horizon.
    pub fn run(&self) -> Stack {
        let mut stack = Stack::new(self.config.clone());
        stack.load_failures(&self.script);
        for (t, p, a) in self.workload.schedule() {
            stack.schedule_value(t, p, a);
        }
        let mut stack = stack;
        stack.run_until(self.horizon);
        stack
    }
}

/// A stable group: no failures at all. `Q` is everyone — note the
/// conditional properties are vacuous here (cross links never go bad),
/// so this scenario is used for throughput/latency and safety checks.
pub fn stable(n: u32, delta: Time, msgs: usize, seed: u64) -> Scenario {
    let config = StackConfig::standard(n, delta, seed);
    let start = 4 * config.pi;
    Scenario {
        name: "stable",
        workload: Workload::uniform(n, msgs, start, delta.max(2)),
        horizon: start + msgs as Time * delta.max(2) + 60 * config.pi,
        script: FailureScript::new(),
        q: ProcId::range(n),
        config,
    }
}

/// A clean partition at `t_part` into a majority side `{p0..}` of size
/// `left` and the rest; traffic continues on the majority side. `Q` is
/// the majority side.
pub fn partition(n: u32, left: u32, delta: Time, msgs: usize, seed: u64) -> Scenario {
    assert!(left < n && 2 * left > n, "left side must be a strict majority");
    let config = StackConfig::standard(n, delta, seed);
    let ambient = ProcId::range(n);
    let q = ProcId::range(left);
    let rest: BTreeSet<ProcId> = ambient.difference(&q).copied().collect();
    let t_part = 8 * config.pi;
    let mut script = FailureScript::new();
    script.partition(t_part, &[q.clone(), rest], &ambient);
    let start = t_part + 1;
    let mut workload = Workload::uniform(left, msgs, start, config.pi / 2);
    workload.seed = seed;
    Scenario { name: "partition", horizon: t_part + 200 * config.pi, workload, script, q, config }
}

/// Partition at `t_part`, heal at `t_heal`; traffic from both sides
/// during the partition. `Q` is everyone (stabilized after the heal).
pub fn merge(n: u32, left: u32, delta: Time, msgs: usize, seed: u64) -> Scenario {
    assert!(left < n);
    let config = StackConfig::standard(n, delta, seed);
    let ambient = ProcId::range(n);
    let lhs = ProcId::range(left);
    let rhs: BTreeSet<ProcId> = ambient.difference(&lhs).copied().collect();
    let t_part = 8 * config.pi;
    let t_heal = t_part + 60 * config.pi;
    let mut script = FailureScript::new();
    script.partition(t_part, &[lhs, rhs], &ambient);
    script.heal(t_heal, &ambient);
    let mut workload = Workload::uniform(n, msgs, t_part + 1, config.pi / 2);
    workload.seed = seed;
    Scenario {
        name: "merge",
        horizon: t_heal + 300 * config.pi,
        workload,
        script,
        q: ambient,
        config,
    }
}

/// One processor crashes at `t_crash` and recovers much later; the
/// survivors (a majority) are `Q` after the crash is scripted as a
/// partition (crashed processor bad, links to it bad).
pub fn crash(n: u32, delta: Time, msgs: usize, seed: u64) -> Scenario {
    assert!(n >= 3);
    let config = StackConfig::standard(n, delta, seed);
    let ambient = ProcId::range(n);
    let dead = ProcId(n - 1);
    let q: BTreeSet<ProcId> = ambient.iter().copied().filter(|&p| p != dead).collect();
    let t_crash = 8 * config.pi;
    let mut script = FailureScript::new();
    // The survivors' side stays good; the crashed processor and all its
    // links go bad — exactly the property hypothesis for Q = survivors.
    script.partition(t_crash, &[q.clone(), BTreeSet::new()], &ambient);
    let mut workload = Workload::uniform(n - 1, msgs, t_crash + 1, config.pi / 2);
    workload.seed = seed;
    Scenario { name: "crash", horizon: t_crash + 200 * config.pi, workload, script, q, config }
}

/// Repeated partition churn (three reconfigurations), then stabilization
/// into the full group. Exercises recovery under adversity; `Q` is
/// everyone after the last heal.
pub fn cascade(n: u32, delta: Time, msgs: usize, seed: u64) -> Scenario {
    assert!(n >= 4);
    let config = StackConfig::standard(n, delta, seed);
    let ambient = ProcId::range(n);
    let mut script = FailureScript::new();
    let p = config.pi;
    let half: BTreeSet<ProcId> = ProcId::range(n / 2);
    let other: BTreeSet<ProcId> = ambient.difference(&half).copied().collect();
    let third: BTreeSet<ProcId> = ProcId::range(n - 1);
    let last: BTreeSet<ProcId> = [ProcId(n - 1)].into();
    script.partition(8 * p, &[half.clone(), other.clone()], &ambient);
    script.heal(40 * p, &ambient);
    script.partition(60 * p, &[third, last], &ambient);
    script.heal(100 * p, &ambient);
    let mut workload = Workload::uniform(n, msgs, 8 * p + 1, p / 2);
    workload.seed = seed;
    Scenario { name: "cascade", horizon: 100 * p + 300 * p, workload, script, q: ambient, config }
}

/// The standard scenario battery used by the conformance experiments.
pub fn battery(seed: u64) -> Vec<Scenario> {
    vec![
        stable(3, 5, 20, seed),
        stable(5, 5, 30, seed + 1),
        partition(5, 3, 5, 15, seed + 2),
        merge(4, 3, 5, 12, seed + 3),
        crash(4, 5, 12, seed + 4),
        cascade(5, 5, 15, seed + 5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::to_trace::check_to_trace;

    #[test]
    fn battery_runs_and_stays_safe() {
        for sc in battery(100) {
            let stack = sc.run();
            let r = check_to_trace(&stack.to_obs().untimed());
            assert!(r.ok(), "{}: {:?}", sc.name, r.violations.first());
        }
    }

    #[test]
    fn stable_scenario_delivers_all_messages() {
        let sc = stable(3, 5, 10, 5);
        let stack = sc.run();
        assert_eq!(stack.delivered(ProcId(0)).len(), 10);
    }

    #[test]
    fn partition_q_converges() {
        let sc = partition(5, 3, 5, 5, 9);
        let stack = sc.run();
        for &p in &sc.q {
            assert_eq!(stack.view_of(p).unwrap().set, sc.q);
        }
    }
}
