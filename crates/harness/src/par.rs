//! Parallel seed fan-out for the experiment engine.
//!
//! Every statistical experiment has the same shape: run an independent,
//! deterministic per-seed job for each seed in a list and aggregate the
//! results in seed order. [`par_seeds`] shards the seed list across a
//! pool of scoped worker threads (one per available core, capped at the
//! number of seeds) while keeping the aggregation **deterministic**: the
//! result vector is indexed by seed position, so the output is identical
//! to a sequential map regardless of worker count or scheduling.
//!
//! Seeds are claimed from a shared atomic cursor rather than pre-split
//! into chunks, so a straggler seed does not idle the rest of the pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` once per seed, fanning out across up to
/// [`std::thread::available_parallelism`] workers, and returns the
/// results in seed order — bit-for-bit identical to
/// `seeds.iter().map(|&s| f(s)).collect()`.
pub fn par_seeds<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    par_seeds_with(seeds, workers, f)
}

/// [`par_seeds`] with an explicit worker count (`workers <= 1` runs
/// sequentially on the calling thread). Exposed so the determinism
/// regression test can compare worker counts directly.
pub fn par_seeds_with<T, F>(seeds: &[u64], workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = workers.min(seeds.len());
    let reg = &crate::obs().registry;
    let jobs = reg.counter("harness_par_jobs_total");
    let job_us = reg.histogram("harness_par_job_us");
    reg.gauge("harness_par_workers").set(workers.max(1) as i64);
    let timed = |seed: u64| {
        let t0 = std::time::Instant::now();
        let out = f(seed);
        jobs.inc();
        job_us.record(t0.elapsed().as_micros() as u64);
        out
    };
    if workers <= 1 {
        return seeds.iter().map(|&s| timed(s)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..seeds.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // ordering: Relaxed — work-stealing ticket counter; each
                // worker only needs a distinct index, which fetch_add's
                // single modification order guarantees. Results are
                // published through the slots mutex, not this counter.
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let out = timed(seed);
                slots.lock().expect("no panicking holder")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every seed ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let seeds: Vec<u64> = (0..37).collect();
        let out = par_seeds(&seeds, |s| s * s);
        assert_eq!(out, seeds.iter().map(|s| s * s).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let seeds: Vec<u64> = (100..116).collect();
        let f = |s: u64| (s, s.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17));
        let sequential = par_seeds_with(&seeds, 1, f);
        for workers in [2, 3, 8, 64] {
            assert_eq!(par_seeds_with(&seeds, workers, f), sequential);
        }
    }

    #[test]
    fn empty_seed_list() {
        let out: Vec<u64> = par_seeds(&[], |s| s);
        assert!(out.is_empty());
    }
}
