//! Experiment binary; see gcs_harness::experiments::e09.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in gcs_harness::experiments::e09::run(quick) {
        println!("{table}");
    }
}
