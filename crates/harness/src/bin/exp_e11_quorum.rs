//! Experiment binary; see gcs_harness::experiments::e11.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in gcs_harness::experiments::e11::run(quick) {
        println!("{table}");
    }
}
