//! Experiment binary; see gcs_harness::experiments::e04.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in gcs_harness::experiments::e04::run(quick) {
        println!("{table}");
    }
}
