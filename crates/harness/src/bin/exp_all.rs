//! Runs every experiment in sequence.
//!
//! ```text
//! exp_all [--quick] [--metrics <addr>]
//! ```
//!
//! `--quick` shrinks experiment sizes; `--metrics` serves the harness's
//! live counters (per-experiment wall times, parallel fan-out activity)
//! as Prometheus-style text on `addr` while the experiments run, and
//! prints the final rendering when they finish.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics_addr = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .map(|addr| addr.parse().unwrap_or_else(|_| panic!("bad --metrics address {addr:?}")));

    let server = metrics_addr.map(|addr: std::net::SocketAddr| {
        let listener = std::net::TcpListener::bind(addr).expect("bind metrics address");
        let server = gcs_obs::serve(listener, gcs_harness::obs().registry.clone())
            .expect("start metrics server");
        eprintln!("exp_all: metrics on http://{}", server.addr());
        server
    });

    for table in gcs_harness::experiments::run_all(quick) {
        println!("{table}");
    }

    if let Some(server) = server {
        println!("{}", gcs_harness::obs().registry.render_text());
        server.stop();
    }
}
