//! Runs every experiment in sequence (pass --quick for reduced sizes).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in gcs_harness::experiments::run_all(quick) {
        println!("{table}");
    }
}
