//! E3 — `VS-machine` (Figure 6) trace conformance via the `cause`
//! function of Lemma 4.2.
//!
//! The implementation stack's recorded VS interface trace is checked for
//! the existence of the cause mapping with all four Lemma 4.2 properties,
//! plus view monotonicity/self-inclusion and the per-view prefix total
//! order. Expected: zero violations in every scenario.

use crate::scenarios;
use crate::{row, Table};
use gcs_core::cause::check_trace;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E3 — implementation VS traces satisfy Lemma 4.2 (cause function) and \
         per-view prefix order",
        &["scenario", "n", "gprcv", "safe", "newview", "views", "violations"],
    );
    let seeds = if quick { 1 } else { 3 };
    for s in 0..seeds {
        for sc in scenarios::battery(200 + s * 31) {
            let stack = sc.run();
            let actions = stack.vs_actions();
            let r = check_trace(&actions, &sc.config.p0);
            t.row(row![
                sc.name,
                sc.config.n,
                r.gprcv_checked,
                r.safe_checked,
                r.newview_checked,
                r.views_seen,
                r.violations.len()
            ]);
        }
    }
    t.note(
        "Checked per event: message integrity (same value, sending view = \
         delivery view), no duplication, no reordering, no losses (per-sender \
         prefix), safe-after-delivery-everywhere, newview monotonicity and \
         self-inclusion, and cross-member prefix-related receive sequences.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn zero_violations_quick() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            assert_eq!(r.last().unwrap(), "0", "VS conformance failed: {r:?}");
        }
    }
}
