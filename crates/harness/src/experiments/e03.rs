//! E3 — `VS-machine` (Figure 6) trace conformance via the `cause`
//! function of Lemma 4.2.
//!
//! The implementation stack's recorded VS interface trace is checked for
//! the existence of the cause mapping with all four Lemma 4.2 properties,
//! plus view monotonicity/self-inclusion and the per-view prefix total
//! order. Expected: zero violations in every scenario.

use crate::par::par_seeds;
use crate::scenarios;
use crate::{row, Table};
use gcs_core::cause::check_trace;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E3 — implementation VS traces satisfy Lemma 4.2 (cause function) and \
         per-view prefix order",
        &["scenario", "n", "gprcv", "safe", "newview", "views", "violations"],
    );
    let seeds = if quick { 1 } else { 3 };
    // Building the batteries is cheap plain data; flatten the seed × battery
    // nest so every scenario runs in parallel, rows appended in loop order.
    let scs: Vec<_> = (0..seeds).flat_map(|s| scenarios::battery(200 + s * 31)).collect();
    let idx: Vec<u64> = (0..scs.len() as u64).collect();
    let rows = par_seeds(&idx, |i| {
        let sc = &scs[i as usize];
        let stack = sc.run();
        let actions = stack.vs_actions();
        let r = check_trace(&actions, &sc.config.p0);
        row![
            sc.name,
            sc.config.n,
            r.gprcv_checked,
            r.safe_checked,
            r.newview_checked,
            r.views_seen,
            r.violations.len()
        ]
        .to_vec()
    });
    for cells in rows {
        t.row(&cells);
    }
    t.note(
        "Checked per event: message integrity (same value, sending view = \
         delivery view), no duplication, no reordering, no losses (per-sender \
         prefix), safe-after-delivery-everywhere, newview monotonicity and \
         self-inclusion, and cross-member prefix-related receive sequences.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn zero_violations_quick() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            assert_eq!(r.last().unwrap(), "0", "VS conformance failed: {r:?}");
        }
    }
}
