//! E4 — `VS-property(b, d, Q)` (Figure 7) against the Section 8 bounds.
//!
//! Series over the group size *n* and the channel delay δ: after a
//! scripted partition isolates a group *Q*, the VS implementation must
//! converge to the view ⟨g, Q⟩ within `b = 9δ + max{π+(n+3)δ, μ}` and
//! make messages sent in that view safe within `d = 2π + nδ`. The series
//! shows the *shape* of the bounds: both grow linearly in n and δ, and
//! the measured values stay below them.

use crate::par::par_seeds;
use crate::scenarios;
use crate::{row, Table};
use gcs_core::properties::{check_vs_property, PropertyParams};
use gcs_model::ProcId;
use gcs_vsimpl::bounds;

fn series_row(n: u32, left: u32, delta: u64, msgs: usize, seed: u64) -> Vec<String> {
    let sc = scenarios::partition(n, left, delta, msgs, seed);
    let nq = sc.q.len();
    let cfg = &sc.config;
    let b = bounds::b(nq, cfg.delta, cfg.pi, cfg.mu);
    let d = bounds::d(nq, cfg.delta, cfg.pi);
    let stack = sc.run();
    let r = check_vs_property(
        &stack.vs_obs(),
        &PropertyParams { b, d, q: sc.q.clone(), ambient: ProcId::range(cfg.n) },
    );
    row![
        n,
        nq,
        delta,
        cfg.pi,
        cfg.mu,
        b,
        r.measured_l_prime,
        d,
        r.measured_d,
        r.resolved,
        if r.holds && r.applicable { "✓" } else { "✗" }
    ]
    .to_vec()
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let headers = [
        "n",
        "|Q|",
        "δ",
        "π",
        "μ",
        "bound b",
        "measured l'",
        "bound d",
        "measured d",
        "safe msgs",
        "holds",
    ];
    let msgs = if quick { 5 } else { 15 };

    let mut by_n =
        Table::new("E4a — VS-property vs Section 8 bounds, varying group size (δ = 5)", &headers);
    let sizes: &[(u32, u32)] =
        if quick { &[(3, 2), (5, 3)] } else { &[(3, 2), (5, 3), (7, 4), (9, 5)] };
    let idx: Vec<u64> = (0..sizes.len() as u64).collect();
    for cells in par_seeds(&idx, |i| {
        let (n, left) = sizes[i as usize];
        series_row(n, left, 5, msgs, 40 + n as u64)
    }) {
        by_n.row(&cells);
    }
    by_n.note("b and d grow linearly in n (π = 2nδ, μ = 4nδ scale with n here).");

    let mut by_delta = Table::new(
        "E4b — VS-property vs Section 8 bounds, varying channel delay (n = 5, |Q| = 3)",
        &headers,
    );
    let deltas: &[u64] = if quick { &[2, 10] } else { &[2, 5, 10, 20] };
    for cells in par_seeds(deltas, |delta| series_row(5, 3, delta, msgs, 60 + delta)) {
        by_delta.row(&cells);
    }
    by_delta.note("Both bounds and measurements scale linearly in δ.");

    vec![by_n, by_delta]
}

#[cfg(test)]
mod tests {
    #[test]
    fn vs_property_holds_quick() {
        for t in super::run(true) {
            for r in t.rows() {
                assert_eq!(r.last().unwrap(), "✓", "VS-property failed: {r:?}");
            }
        }
    }
}
