//! E10 — ablation: 3-round vs 1-round membership (Section 8,
//! footnote 7).
//!
//! After a partition heals, both variants must converge to one view over
//! the full group; the 1-round protocol forms views from stale
//! "recently heard" information, so it needs more reformation rounds and
//! stabilizes later — the paper's footnote predicts exactly this
//! ("a different implementation could use the one-round protocol …
//! however, this would stabilize less quickly").

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_model::failure::FailureScript;
use gcs_model::{ProcId, Time};
use gcs_netsim::TraceEvent;
use gcs_vsimpl::{ImplEvent, MembershipMode, Stack, StackConfig};
use std::collections::BTreeSet;

struct Outcome {
    converge_time: Option<Time>,
    newviews: usize,
}

fn run_merge(mode: MembershipMode, n: u32, seed: u64) -> Outcome {
    let mut cfg = StackConfig::standard(n, 5, seed);
    cfg.mode = mode;
    let pi = cfg.pi;
    let ambient = ProcId::range(n);
    let left = ProcId::range(n / 2 + 1);
    let right: BTreeSet<ProcId> = ambient.difference(&left).copied().collect();
    let t_part = 8 * pi;
    let t_heal = t_part + 40 * pi;
    let mut script = FailureScript::new();
    script.partition(t_part, &[left, right], &ambient);
    script.heal(t_heal, &ambient);
    let mut stack = Stack::new(cfg);
    stack.load_failures(&script);
    stack.run_until(t_heal + 400 * pi);
    // Converged when every processor's *final* view is the full group;
    // the convergence time is the last newview event.
    let converged = ambient.iter().all(|&p| stack.view_of(p).is_some_and(|v| v.set == ambient));
    let mut last_nv = None;
    let mut newviews = 0usize;
    for ev in stack.trace().events() {
        if ev.time >= t_heal {
            if let TraceEvent::App(ImplEvent::NewView { .. }) = &ev.action {
                last_nv = Some(ev.time);
                newviews += 1;
            }
        }
    }
    Outcome { converge_time: converged.then(|| last_nv.map(|t| t - t_heal)).flatten(), newviews }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E10 — membership ablation: 3-round (call/accept/join) vs 1-round (footnote 7)",
        &[
            "protocol",
            "n",
            "seeds",
            "converged",
            "mean heal→stable",
            "max heal→stable",
            "mean newviews after heal",
        ],
    );
    let n = if quick { 4 } else { 6 };
    let seeds: u64 = if quick { 2 } else { 8 };
    for (name, mode) in
        [("3-round", MembershipMode::ThreeRound), ("1-round", MembershipMode::OneRound)]
    {
        let seed_list: Vec<u64> = (0..seeds).collect();
        let outcomes = par_seeds(&seed_list, |seed| run_merge(mode, n, 300 + seed));
        let mut times = Vec::new();
        let mut converged = 0usize;
        let mut views = 0usize;
        for o in &outcomes {
            if let Some(t) = o.converge_time {
                converged += 1;
                times.push(t);
            }
            views += o.newviews;
        }
        let mean =
            if times.is_empty() { 0 } else { times.iter().sum::<Time>() / times.len() as Time };
        let max = times.iter().max().copied().unwrap_or(0);
        t.row(row![
            name,
            n,
            seeds,
            format!("{converged}/{seeds}"),
            mean,
            max,
            format!("{:.1}", views as f64 / seeds as f64)
        ]);
    }
    t.note(
        "Expected shape: both converge; the 1-round variant needs more view \
         installations and/or longer to settle after the heal.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_protocols_converge_quick() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            let (c, s) = r[3].split_once('/').unwrap();
            assert_eq!(c, s, "{} failed to converge: {r:?}", r[0]);
        }
    }
}
