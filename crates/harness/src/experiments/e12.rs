//! E12 — sequentially consistent replicated memory over TO (Section 3,
//! footnote 3).
//!
//! Writes travel through the totally ordered broadcast; reads are local.
//! The experiment replays each client's delivered stream into a replica,
//! interleaves deterministic reads, checks sequential consistency against
//! the common order, and contrasts the (zero) read latency of the
//! sequentially consistent memory with the atomic variant, where reads
//! are serialized through the broadcast and pay the full delivery
//! latency.
//!
//! The two variants are independent simulations with their own seeds and
//! their own [`StackConfig`]s (each derives π from its own config rather
//! than borrowing the other block's), so they fan out through
//! [`par_seeds`] like every other experiment.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_apps::seqmem::{check_sequential_consistency, SeqMemory};
use gcs_apps::{AtomicMemory, KvOp};
use gcs_model::{ProcId, Time, Value};
use gcs_vsimpl::{Stack, StackConfig};
use std::collections::BTreeMap;

fn mean(v: &[Time]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<Time>() as f64 / v.len() as f64
    }
}

/// The sequentially consistent variant: writes through TO, local reads.
fn seqmem_row(quick: bool) -> Vec<String> {
    let n = 3u32;
    let writes = if quick { 8 } else { 30 };
    let keys = ["x", "y", "z"];

    let config = StackConfig::standard(n, 5, 1201);
    let mut stack = Stack::new(config);
    let pi = stack.config().pi;
    let start = 4 * pi;
    let mut write_time: BTreeMap<Value, Time> = BTreeMap::new();
    for i in 0..writes {
        let payload = KvOp::Put { key: keys[i % keys.len()].into(), value: i as i64 }.encode();
        let t = start + i as Time * 15;
        write_time.insert(payload.clone(), t);
        stack.schedule_value(t, ProcId(i as u32 % n), payload);
    }
    stack.run_until(start + writes as Time * 15 + 60 * pi);

    // Replay deliveries into replicas, reading every key after each apply.
    let mut replicas: Vec<SeqMemory> = (0..n).map(|_| SeqMemory::new()).collect();
    let mut longest: Vec<Value> = Vec::new();
    for (i, replica) in replicas.iter_mut().enumerate() {
        let stream: Vec<Value> =
            stack.delivered(ProcId(i as u32)).iter().map(|(_, a)| a.clone()).collect();
        for payload in &stream {
            replica.deliver(payload);
            for k in keys {
                replica.read(k);
            }
        }
        if stream.len() > longest.len() {
            longest = stream;
        }
    }
    let sc_ok = check_sequential_consistency(&replicas, &longest);
    let reads_checked: usize = replicas.iter().map(|r| r.reads().len()).sum();

    // Write latency: bcast → first brcv anywhere (commit visibility).
    let mut write_lats: Vec<Time> = Vec::new();
    for ev in stack.to_obs().events() {
        if let gcs_core::properties::ToObs::Brcv { a, .. } = &ev.action {
            if let Some(&t0) = write_time.get(a) {
                write_lats.push(ev.time - t0);
                write_time.remove(a);
            }
        }
    }

    row![
        "sequentially consistent",
        writes,
        reads_checked,
        if sc_ok.is_ok() { "✓" } else { "✗" },
        "0 (local)",
        format!("{:.0}", mean(&write_lats))
    ]
    .to_vec()
}

/// The atomic variant: reads are serialized through TO as well.
fn atomic_row(quick: bool) -> Vec<String> {
    let n = 3u32;
    let ops = if quick { 8 } else { 30 };
    let keys = ["x", "y", "z"];

    let config = StackConfig::standard(n, 5, 1301);
    let mut stack = Stack::new(config);
    let pi = stack.config().pi;
    let start = 4 * pi;
    let mut read_time: BTreeMap<Value, Time> = BTreeMap::new();
    for i in 0..ops {
        let t = start + i as Time * 15;
        if i % 2 == 0 {
            stack.schedule_value(
                t,
                ProcId(i as u32 % n),
                KvOp::Put { key: keys[i % keys.len()].into(), value: i as i64 }.encode(),
            );
        } else {
            // Reads must be distinct payloads so their latencies can be
            // matched up; uniqueness comes through the key index.
            let payload = KvOp::Get { key: format!("{}#{}", keys[i % keys.len()], i) }.encode();
            read_time.insert(payload.clone(), t);
            stack.schedule_value(t, ProcId(i as u32 % n), payload);
        }
    }
    stack.run_until(start + ops as Time * 15 + 60 * pi);
    let mut read_lats: Vec<Time> = Vec::new();
    for ev in stack.to_obs().events() {
        if let gcs_core::properties::ToObs::Brcv { a, .. } = &ev.action {
            if let Some(&t0) = read_time.get(a) {
                read_lats.push(ev.time - t0);
                read_time.remove(a);
            }
        }
    }
    // Replica convergence for the atomic variant.
    let mut outputs: Vec<Vec<(String, Option<i64>)>> = Vec::new();
    for i in 0..n {
        let mut replica = AtomicMemory::new();
        for (_, a) in stack.delivered(ProcId(i)) {
            replica.deliver(a);
        }
        outputs.push(replica.outputs().to_vec());
    }
    let atomic_ok = outputs.windows(2).all(|w| {
        let min = w[0].len().min(w[1].len());
        w[0][..min] == w[1][..min]
    });

    row![
        "atomic",
        ops,
        outputs.iter().map(|o| o.len()).sum::<usize>(),
        if atomic_ok { "✓" } else { "✗" },
        format!("{:.0}", mean(&read_lats)),
        format!("{:.0}", mean(&read_lats))
    ]
    .to_vec()
}

/// One variant's table row: `which` 0 is the sequentially consistent
/// memory, anything else the atomic one. Exposed (like `e05::seed_counts`)
/// so the determinism regression can compare worker counts directly.
pub fn variant_row(which: u64, quick: bool) -> Vec<String> {
    if which == 0 {
        seqmem_row(quick)
    } else {
        atomic_row(quick)
    }
}

/// Runs the experiment: both variants fan out in parallel, rows are
/// aggregated in variant order.
pub fn run(quick: bool) -> Vec<Table> {
    let rows = par_seeds(&[0, 1], |which| variant_row(which, quick));

    let mut t = Table::new(
        "E12 — replicated memory over TO (footnote 3)",
        &["variant", "ops", "reads checked", "consistency", "read latency", "write/commit latency"],
    );
    for cells in rows {
        t.row(&cells);
    }
    t.note(
        "Expected shape: sequentially consistent reads are free (local); \
         atomic reads pay the totally-ordered-broadcast latency (≈ the write \
         latency, a couple of token rotations).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn memory_is_consistent_and_reads_are_cheap_only_in_seqmem() {
        let tables = super::run(true);
        let rows = tables[0].rows();
        assert_eq!(rows[0][3], "✓", "sequential consistency violated");
        assert_eq!(rows[1][3], "✓", "atomic outputs diverged");
        let atomic_read: f64 = rows[1][4].parse().unwrap();
        assert!(atomic_read > 0.0, "atomic reads must pay broadcast latency");
    }
}
