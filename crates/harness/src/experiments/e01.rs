//! E1 — `TO-machine` (Figure 3) trace conformance.
//!
//! Two systems must produce only `TO-machine` traces: the abstract
//! composed `VStoTO-system` (checked on-line via the simulation relation)
//! and the full implementation stack (checked black-box on its recorded
//! client trace). Expected result: zero violations everywhere.

use crate::par::par_seeds;
use crate::scenarios;
use crate::{row, Table};
use gcs_core::adversary::SystemAdversary;
use gcs_core::simulation::install_simulation_check;
use gcs_core::system::{SysAction, VsToToSystem};
use gcs_core::to_trace::check_to_trace;
use gcs_ioa::Runner;
use gcs_model::{Majority, ProcId};
use std::sync::Arc;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds: u64 = if quick { 3 } else { 20 };
    let steps = if quick { 400 } else { 2_000 };

    let mut abs = Table::new(
        "E1a — abstract VStoTO-system conformance to TO-machine (Thm 6.26, executable)",
        &["n", "seeds", "steps/seed", "brcv events", "trace violations"],
    );
    for n in [3u32, 4, 5] {
        let seed_list: Vec<u64> = (0..seeds).collect();
        let per_seed = par_seeds(&seed_list, |seed| {
            let procs = ProcId::range(n);
            let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)));
            let mut runner = Runner::new(sys, SystemAdversary::default(), seed);
            let v = install_simulation_check(&mut runner);
            let exec = runner.run(steps).expect("no invariants installed");
            let brcvs =
                exec.actions().iter().filter(|a| matches!(a, SysAction::Brcv { .. })).count();
            let violations = v.borrow().len();
            (brcvs, violations)
        });
        let brcvs: usize = per_seed.iter().map(|(b, _)| b).sum();
        let violations: usize = per_seed.iter().map(|(_, v)| v).sum();
        abs.row(row![n, seeds, steps, brcvs, violations]);
    }
    abs.note("Every step is checked against the simulation relation f of Section 6.2.");

    let mut impl_table = Table::new(
        "E1b — implementation stack conformance to TO-machine (black-box trace check)",
        &["scenario", "n", "bcast", "brcv", "trace violations"],
    );
    for sc in scenarios::battery(7) {
        let stack = sc.run();
        let report = check_to_trace(&stack.to_obs().untimed());
        impl_table.row(row![
            sc.name,
            sc.config.n,
            report.bcasts,
            report.brcvs,
            report.violations.len()
        ]);
    }
    impl_table.note(
        "Checked: integrity, no duplication, common total order, per-sender FIFO \
         (the trace characterization of Figure 3).",
    );
    vec![abs, impl_table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_reports_zero_violations() {
        for t in super::run(true) {
            for r in t.rows() {
                assert_eq!(r.last().unwrap(), "0", "violations in {t}");
            }
        }
    }
}
