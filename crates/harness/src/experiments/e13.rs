//! E13 (extension) — the cost of full-state exchange.
//!
//! The `VStoTO` algorithm exchanges each member's *entire* `content` and
//! `order` on every view change (Figure 10's summary); the paper inherits
//! this from the data-replication algorithms it abstracts (\[35\], \[36\])
//! and does not garbage-collect history. This extension experiment
//! quantifies the consequence: summary size grows linearly with all
//! traffic ever sent, so recovery bandwidth grows without bound over the
//! system's lifetime — the scalability issue that the state-transfer
//! optimizations the paper cites in footnote 4 (\[1\]) address.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_core::msg::AppMsg;
use gcs_model::failure::FailureScript;
use gcs_model::{ProcId, Time};
use gcs_netsim::TraceEvent;
use gcs_vsimpl::{ImplEvent, Stack, StackConfig};
use std::collections::BTreeSet;

/// Runs the experiment: for increasing pre-reconfiguration traffic,
/// report the size of the summaries exchanged at the next view change.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E13 — state-exchange summary growth with history (extension)",
        &[
            "values sent before reconfig",
            "view changes",
            "max summary |con|",
            "max summary |ord|",
            "total exchange payload (labels)",
        ],
    );
    let n = 3u32;
    let sizes: &[usize] = if quick { &[5, 20] } else { &[5, 20, 80, 320] };
    let rows = par_seeds(&sizes.iter().map(|&m| m as u64).collect::<Vec<_>>(), |m64| {
        let msgs = m64 as usize;
        let mut stack = Stack::new(StackConfig::standard(n, 5, 77));
        let pi = stack.config().pi;
        let start = 4 * pi;
        for i in 0..msgs {
            stack.schedule_bcast(start + i as Time * 5, ProcId(i as u32 % n));
        }
        // One reconfiguration after the traffic: drop p2, then heal.
        let ambient = ProcId::range(n);
        let pair: BTreeSet<ProcId> = [ProcId(0), ProcId(1)].into();
        let solo: BTreeSet<ProcId> = [ProcId(2)].into();
        let t_part = start + msgs as Time * 5 + 20 * pi;
        let mut script = FailureScript::new();
        script.partition(t_part, &[pair, solo], &ambient);
        script.heal(t_part + 30 * pi, &ambient);
        stack.load_failures(&script);
        stack.run_until(t_part + 120 * pi);

        let mut max_con = 0usize;
        let mut max_ord = 0usize;
        let mut total = 0usize;
        let mut views = 0usize;
        for ev in stack.trace().events() {
            match &ev.action {
                TraceEvent::App(ImplEvent::GpSnd { m: AppMsg::Summary(x), .. }) => {
                    max_con = max_con.max(x.con.len());
                    max_ord = max_ord.max(x.ord.len());
                    total += x.con.len();
                }
                TraceEvent::App(ImplEvent::NewView { .. }) => views += 1,
                _ => {}
            }
        }
        row![msgs, views, max_con, max_ord, total].to_vec()
    });
    for cells in rows {
        t.row(&cells);
    }
    t.note(
        "Shape: summary size tracks the total history (the algorithm never \
         prunes content/order), so exchange cost is O(lifetime traffic) per \
         view change — the motivation for the efficient-state-transfer work \
         the paper cites in footnote 4.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn summary_size_grows_with_history() {
        let tables = super::run(true);
        let rows = tables[0].rows();
        let small: usize = rows[0][2].parse().unwrap();
        let large: usize = rows[1][2].parse().unwrap();
        assert!(large >= small + 10, "summary size must track history ({small} vs {large})");
    }
}
