//! E2 — `TO-property(b+d, d, Q)` (Figure 5, Theorems 7.1/7.2).
//!
//! For each stabilizing scenario, the implementation stack's client trace
//! is checked against `TO-property` with the analytical parameters of
//! Section 8: `b = 9δ + max{π+(n+3)δ, μ}`, `d = 2π + nδ`, and the TO
//! bounds `(b+d, d)` from Theorem 7.1. The table reports the measured
//! minimal stabilization interval l′ against `b+d` and the effective
//! delivery latency against `d`.

use crate::par::par_seeds;
use crate::scenarios::{self, Scenario};
use crate::{row, Table};
use gcs_core::properties::{check_to_property, PropertyParams};
use gcs_model::ProcId;
use gcs_vsimpl::bounds;

fn check(sc: &Scenario) -> Vec<String> {
    let nq = sc.q.len();
    let cfg = &sc.config;
    let b = bounds::b(nq, cfg.delta, cfg.pi, cfg.mu);
    let d = bounds::d(nq, cfg.delta, cfg.pi);
    let stack = sc.run();
    let r = check_to_property(
        &stack.to_obs(),
        &PropertyParams { b: b + d, d, q: sc.q.clone(), ambient: ProcId::range(cfg.n) },
    );
    row![
        sc.name,
        cfg.n,
        nq,
        cfg.delta,
        cfg.pi,
        b + d,
        r.measured_l_prime,
        d,
        r.measured_d,
        r.resolved,
        r.censored,
        if r.holds && r.applicable { "✓" } else { "✗" }
    ]
    .to_vec()
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E2 — TO-property(b+d, d, Q) on the implementation stack (Thm 7.1/7.2)",
        &[
            "scenario",
            "n",
            "|Q|",
            "δ",
            "π",
            "bound b+d",
            "measured l'",
            "bound d",
            "measured d",
            "resolved",
            "censored",
            "holds",
        ],
    );
    let msgs = if quick { 6 } else { 20 };
    let mut scs = vec![
        scenarios::partition(5, 3, 5, msgs, 11),
        scenarios::merge(4, 3, 5, msgs, 12),
        scenarios::crash(4, 5, msgs, 13),
    ];
    if !quick {
        scs.push(scenarios::partition(7, 4, 5, msgs, 14));
        scs.push(scenarios::partition(5, 3, 10, msgs, 15));
        scs.push(scenarios::merge(6, 4, 5, msgs, 16));
        scs.push(scenarios::cascade(5, 5, msgs, 17));
    }
    // Scenarios are independent: compute each row in parallel (indexed
    // fan-out keeps the table order identical to the sequential loop).
    let idx: Vec<u64> = (0..scs.len() as u64).collect();
    for cells in par_seeds(&idx, |i| check(&scs[i as usize])) {
        t.row(&cells);
    }
    t.note(
        "measured l' is the minimal stabilization interval that satisfies every \
         delivery deadline max(t, l+l')+d; 'holds' requires l' ≤ b+d with no \
         unmet deadlines. A measured d equal to the bound means the binding \
         obligation was absorbed at exactly the l' reported (see Figure 5's \
         deadline rule).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn property_holds_on_quick_battery() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            assert_eq!(r.last().unwrap(), "✓", "TO-property failed: {r:?}");
        }
    }
}
