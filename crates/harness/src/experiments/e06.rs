//! E6 — the invariant suite (Lemma 4.1 and Section 6.1) evaluated after
//! every step of randomly scheduled executions with adversarial view
//! churn. One row per lemma; expected: zero violations.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_core::adversary::SystemAdversary;
use gcs_core::derived::DerivedState;
use gcs_core::invariants::all_invariants;
use gcs_core::system::VsToToSystem;
use gcs_ioa::Runner;
use gcs_model::{Majority, ProcId};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// One seed's worth of invariant checking: every check evaluated on the
/// post-state of every step against one shared [`DerivedState`] snapshot
/// per state. Returns `(states checked, violations)` per invariant, in
/// [`all_invariants`] order. Public so the parallel-determinism
/// regression test can drive it with explicit worker counts.
pub fn seed_counts(n: u32, seed: u64, steps: usize) -> Vec<(usize, usize)> {
    let procs = ProcId::range(n);
    let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)));
    let mut runner = Runner::new(sys, SystemAdversary::default().with_view_prob(0.1), seed);
    let checks = all_invariants();
    let counts: Rc<RefCell<Vec<(usize, usize)>>> =
        Rc::new(RefCell::new(vec![(0, 0); checks.len()]));
    let sink = counts.clone();
    runner.add_observer(move |_pre, _a, post| {
        let d = DerivedState::new(post);
        let mut c = sink.borrow_mut();
        for (i, (_, check)) in checks.iter().enumerate() {
            c[i].0 += 1;
            if check(post, &d).is_err() {
                c[i].1 += 1;
            }
        }
    });
    runner.run(steps).expect("no erroring invariants installed");
    drop(runner);
    Rc::try_unwrap(counts).expect("observer dropped with runner").into_inner()
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds = if quick { 2 } else { 10 };
    let steps = if quick { 300 } else { 1_500 };
    let n = 3u32;

    // Count states checked and violations per invariant across all runs,
    // aggregating the per-seed counts in seed order.
    let names: Vec<&'static str> = all_invariants().iter().map(|(n, _)| *n).collect();
    let seed_list: Vec<u64> = (0..seeds).collect();
    let per_seed = par_seeds(&seed_list, |seed| seed_counts(n, seed, steps));
    let mut counts = vec![(0usize, 0usize); names.len()];
    for one_seed in &per_seed {
        for (total, c) in counts.iter_mut().zip(one_seed) {
            total.0 += c.0;
            total.1 += c.1;
        }
    }

    let mut t = Table::new(
        "E6a — invariant suite over random executions with view churn",
        &["invariant", "states checked", "violations"],
    );
    for (i, name) in names.iter().enumerate() {
        let (checked, viol) = counts[i];
        t.row(row![name, checked, viol]);
    }
    t.note(format!(
        "{} seeds × {} scheduler steps, n = {}, adversarial createview churn.",
        seeds, steps, n
    ));
    vec![t, exhaustive(quick)]
}

/// E6b: bounded *exhaustive* exploration — the invariants on every
/// reachable state of a tiny configuration, not a random sample.
fn exhaustive(quick: bool) -> Table {
    use gcs_core::invariants::check_all;
    use gcs_core::system::SysAction;
    use gcs_ioa::{explore, ExploreLimits};
    use gcs_model::{Value, View, ViewId};
    let procs = ProcId::range(2);
    let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(2)));
    let proposals = |s: &gcs_core::system::SysState| {
        let mut out = Vec::new();
        for (i, p) in [ProcId(0), ProcId(1)].into_iter().enumerate() {
            let a = Value::from_u64(i as u64 + 1);
            let already = s.procs[&p].delay.iter().any(|v| *v == a)
                || s.procs[&p].content.values().any(|v| *v == a);
            if !already {
                out.push(SysAction::Bcast { p, a });
            }
        }
        let g1 = ViewId::new(1, ProcId(0));
        if !s.vs.created_viewids().contains(&g1) {
            out.push(SysAction::CreateView(View::new(g1, ProcId::range(2))));
        }
        out
    };
    let depth = if quick { 6 } else { 10 };
    let result = explore(
        &sys,
        proposals,
        |s| check_all(s, &DerivedState::new(s)),
        ExploreLimits { max_depth: depth, max_states: 400_000 },
    );
    let mut t = Table::new(
        "E6b — bounded exhaustive exploration (n = 2, one adversarial view, two values)",
        &["depth", "distinct states", "transitions", "truncated", "violations"],
    );
    match result {
        Ok(stats) => {
            t.row(row![depth, stats.states, stats.transitions, stats.truncated, 0]);
        }
        Err((path, e)) => {
            t.row(row![depth, "-", "-", "-", format!("{e} after {} steps", path.len())]);
        }
    }
    t.note("Every reachable state up to the depth bound satisfies all 29 invariants.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn zero_violations_quick() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            assert_eq!(r.last().unwrap(), "0", "invariant failed: {r:?}");
            assert_ne!(r[1], "0", "invariant never checked: {r:?}");
        }
    }
}
