//! E9 — ablation: VS's early delivery + separate safe indication versus
//! Totem-style *safe delivery* (introduction difference #5, footnote 5).
//!
//! In VS, a message is delivered as soon as it is ordered and the safe
//! indication follows; in the safe-delivery variant the client sees the
//! message only once every member has received it. The ablation measures
//! the per-message `gprcv` latency (how early the tentative order can
//! form) and the client `brcv` latency (unchanged, since confirmation
//! waits for safety either way) — and shows that the variant *breaks the
//! VS contract itself* (safe indications precede delivery at other
//! members), which is exactly why the paper separates the two events.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_core::cause::check_trace;
use gcs_core::to_trace::check_to_trace;
use gcs_model::{ProcId, Time};
use gcs_netsim::TraceEvent;
use gcs_vsimpl::{ImplEvent, Stack, StackConfig};
use std::collections::BTreeMap;

struct Measured {
    mean_gprcv: f64,
    mean_brcv: f64,
    delivered: usize,
    vs_violations: usize,
    to_violations: usize,
}

fn measure(safe_delivery: bool, n: u32, msgs: usize, seed: u64) -> Measured {
    let mut cfg = StackConfig::standard(n, 5, seed);
    cfg.safe_delivery = safe_delivery;
    let pi = cfg.pi;
    let mut stack = Stack::new(cfg);
    let start = 4 * pi;
    let mut sent_at: BTreeMap<gcs_model::Value, Time> = BTreeMap::new();
    for i in 0..msgs {
        let t = start + i as Time * 10;
        let v = stack.schedule_bcast(t, ProcId(i as u32 % n));
        sent_at.insert(v, t);
    }
    stack.run_until(start + msgs as Time * 10 + 60 * pi);

    // gprcv latency: gpsnd time → mean over receivers of gprcv time.
    let mut snd_time: BTreeMap<u64, Time> = BTreeMap::new();
    let mut gprcv_lat: Vec<Time> = Vec::new();
    let mut brcv_lat: Vec<Time> = Vec::new();
    let mut delivered = 0usize;
    for ev in stack.trace().events() {
        match &ev.action {
            TraceEvent::App(ImplEvent::GpSnd { mid, .. }) => {
                snd_time.insert(*mid, ev.time);
            }
            TraceEvent::App(ImplEvent::GpRcv { mid, .. }) => {
                if let Some(&t0) = snd_time.get(mid) {
                    gprcv_lat.push(ev.time - t0);
                }
            }
            TraceEvent::App(ImplEvent::Brcv { a, .. }) => {
                delivered += 1;
                if let Some(&t0) = sent_at.get(a) {
                    brcv_lat.push(ev.time - t0);
                }
            }
            _ => {}
        }
    }
    let mean = |v: &[Time]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<Time>() as f64 / v.len() as f64
        }
    };
    let vs = check_trace(&stack.vs_actions(), &ProcId::range(n));
    let to = check_to_trace(&stack.to_obs().untimed());
    Measured {
        mean_gprcv: mean(&gprcv_lat),
        mean_brcv: mean(&brcv_lat),
        delivered,
        vs_violations: vs.violations.len(),
        to_violations: to.violations.len(),
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E9 — early delivery + safe indication (VS) vs Totem-style safe delivery",
        &[
            "mode",
            "n",
            "msgs",
            "mean gprcv latency",
            "mean brcv latency",
            "brcv events",
            "VS-contract violations",
            "TO violations",
        ],
    );
    let n = 3u32;
    let msgs = if quick { 6 } else { 25 };
    let modes = [("VS (deliver then safe)", false), ("safe delivery", true)];
    let idx: Vec<u64> = (0..modes.len() as u64).collect();
    for cells in par_seeds(&idx, |i| {
        let (name, sd) = modes[i as usize];
        let m = measure(sd, n, msgs, 90);
        row![
            name,
            n,
            msgs,
            format!("{:.1}", m.mean_gprcv),
            format!("{:.1}", m.mean_brcv),
            m.delivered,
            m.vs_violations,
            m.to_violations
        ]
        .to_vec()
    }) {
        t.row(&cells);
    }
    t.note(
        "Expected shape: safe delivery inflates gprcv latency by roughly one \
         token rotation while brcv latency is comparable; it reports nonzero \
         VS-contract violations (safe precedes delivery at other members — \
         the 'coordinated attack' tension the paper sidesteps by separating \
         delivery from the safe notification), while TO-level safety holds in \
         stable runs either way.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_matches_paper_expectation() {
        let tables = super::run(true);
        let rows = tables[0].rows();
        let g0: f64 = rows[0][3].parse().unwrap();
        let g1: f64 = rows[1][3].parse().unwrap();
        assert!(g1 > g0, "safe delivery should delay gprcv ({g0} vs {g1})");
        assert_eq!(rows[0][6], "0", "VS mode must satisfy the VS contract");
        assert_ne!(rows[1][6], "0", "safe-delivery mode must violate the VS contract");
        assert_eq!(rows[0][7], "0");
        assert_eq!(rows[1][7], "0");
    }
}
