//! E7 — decomposition of recovery (the `VStoTO-property` of Figure 11
//! and the performance argument of Figure 12).
//!
//! After a partition heals, recovery proceeds in phases: (1) membership
//! converges (last `newview`), (2) the state exchange completes and its
//! summaries become safe at every member, (3) reconciled values reach the
//! clients. The series shows how each phase scales with group size.

use crate::par::par_seeds;
use crate::scenarios;
use crate::{row, Table};
use gcs_core::msg::AppMsg;
use gcs_model::Time;
use gcs_netsim::TraceEvent;
use gcs_vsimpl::ImplEvent;
use gcs_vsimpl::{check_figure11, Figure11Params};

struct Phases {
    views_done: Option<Time>,
    exchange_safe: Option<Time>,
    first_delivery: Option<Time>,
}

fn phases_after(stack: &gcs_vsimpl::Stack, t0: Time) -> Phases {
    let mut views_done = None;
    let mut exchange_safe = None;
    let mut first_delivery = None;
    for ev in stack.trace().events() {
        if ev.time < t0 {
            continue;
        }
        match &ev.action {
            TraceEvent::App(ImplEvent::NewView { .. }) => views_done = Some(ev.time),
            TraceEvent::App(ImplEvent::Safe { m: AppMsg::Summary(_), .. }) => {
                exchange_safe = Some(ev.time)
            }
            TraceEvent::App(ImplEvent::Brcv { .. })
                if first_delivery.is_none() && exchange_safe.is_some() =>
            {
                first_delivery = Some(ev.time);
            }
            _ => {}
        }
    }
    Phases { views_done, exchange_safe, first_delivery }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E7 — recovery decomposition after a partition heals (merge scenario)",
        &[
            "n",
            "δ",
            "π",
            "heal→views settled",
            "→state exchange safe",
            "→first reconciled brcv",
            "total",
            "Fig11 α‴ ≤ d",
        ],
    );
    let sizes: &[u32] = if quick { &[4] } else { &[4, 6, 8] };
    let rows = par_seeds(&sizes.iter().map(|&n| n as u64).collect::<Vec<_>>(), |n64| {
        let n = n64 as u32;
        let sc = scenarios::merge(n, n - 1, 5, if quick { 6 } else { 12 }, 70 + n as u64);
        let t_heal = sc.script.last_time();
        let stack = sc.run();
        let ph = phases_after(&stack, t_heal);
        let views = ph.views_done.map(|t| t - t_heal);
        let exch = ph.exchange_safe.map(|t| t - t_heal);
        let deliver = ph.first_delivery.map(|t| t - t_heal);
        let fmt = |x: Option<Time>| x.map(|v| v.to_string()).unwrap_or("—".into());
        let d = gcs_vsimpl::bounds::d(sc.q.len(), sc.config.delta, sc.config.pi);
        let f11 = check_figure11(
            stack.trace(),
            &Figure11Params { d, q: sc.q.clone(), ambient: gcs_model::ProcId::range(sc.config.n) },
        );
        row![
            n,
            sc.config.delta,
            sc.config.pi,
            fmt(views),
            fmt(exch.zip(views).map(|(e, v)| e.saturating_sub(v))),
            fmt(deliver.zip(exch).map(|(d, e)| d.saturating_sub(e))),
            fmt(deliver),
            format!(
                "{} ({} ≤ {})",
                if f11.premises_hold && f11.holds { "✓" } else { "✗" },
                f11.measured_alpha3,
                d
            )
        ]
        .to_vec()
    });
    for cells in rows {
        t.row(&cells);
    }
    t.note(
        "Phases: membership (probe + 3-round formation), then the summary \
         exchange riding the token until safe at all members, then client \
         deliveries of reconciled values. The membership phase is dominated \
         by μ (probe period); the exchange by token rotations (π).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn recovery_completes_quick() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            assert_ne!(r[6], "—", "recovery did not complete: {r:?}");
            assert!(r[7].starts_with('✓'), "Figure 11 failed: {r:?}");
        }
    }
}
