//! E8 — `WeakVS-machine` trace equivalence (Section 4.1, Remark).
//!
//! Random executions of `WeakVS-machine` (views created in arbitrary
//! identifier order) are rewritten by the createview-reordering
//! construction and replayed in the strict `VS-machine`; external traces
//! must match exactly.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_core::vs_machine::{VsAction, VsMachine};
use gcs_core::weak_vs::{reorder_createviews, replay, WeakVsMachine};
use gcs_ioa::automaton::FnEnvironment;
use gcs_ioa::{Automaton, Runner};
use gcs_model::{ProcId, Value, View, ViewId};
use rand::Rng;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E8 — WeakVS-machine ≡ VS-machine on finite traces (createview reordering)",
        &[
            "seeds",
            "actions",
            "createviews",
            "out-of-order runs",
            "strong replay ok",
            "traces equal",
        ],
    );
    let seeds = if quick { 4 } else { 30 };
    let steps = if quick { 300 } else { 1_200 };
    let n = 3u32;
    // Each seeded run is independent; fan out and aggregate the counters
    // afterwards (sums are order-insensitive, so the table is unchanged).
    let seed_list: Vec<u64> = (0..seeds).collect();
    let per_seed = par_seeds(&seed_list, |seed| {
        let weak: WeakVsMachine<Value> = WeakVsMachine::new(ProcId::range(n), ProcId::range(n));
        // Adversary that coins view identifiers in arbitrary order —
        // allowed by the weak machine, not by the strong one.
        let mut counter = 0u64;
        let env = FnEnvironment(
            move |s: &gcs_core::vs_machine::VsState<Value>,
                  _step: usize,
                  rng: &mut dyn rand::RngCore| {
                let mut out = Vec::new();
                if rng.gen_bool(0.4) {
                    counter += 1;
                    out.push(VsAction::GpSnd {
                        p: ProcId(rng.gen_range(0..n)),
                        m: Value::from_u64(counter),
                    });
                }
                if rng.gen_bool(0.15) {
                    let max_epoch = s.created.iter().map(|v| v.id.epoch).max().unwrap_or(0);
                    let epoch = rng.gen_range(1..=max_epoch + 2);
                    let origin = ProcId(rng.gen_range(0..n));
                    let members =
                        (0..n).filter(|_| rng.gen_bool(0.6)).map(ProcId).chain([origin]).collect();
                    out.push(VsAction::CreateView(View::new(ViewId::new(epoch, origin), members)));
                }
                out
            },
        );
        let mut runner = Runner::new(weak, env, seed);
        let exec = runner.run(steps).expect("no invariants installed");
        let actions = exec.actions().to_vec();
        let creates: Vec<ViewId> = actions
            .iter()
            .filter_map(|a| match a {
                VsAction::CreateView(v) => Some(v.id),
                _ => None,
            })
            .collect();
        let ooo = creates.windows(2).any(|w| w[0] > w[1]);
        let strong: VsMachine<Value> = VsMachine::new(ProcId::range(n), ProcId::range(n));
        let reordered = reorder_createviews(&actions);
        let ok = replay(&strong, &reordered).is_ok();
        let ext = |acts: &[VsAction<Value>]| -> Vec<VsAction<Value>> {
            acts.iter().filter(|a| strong.kind(a).is_external()).cloned().collect()
        };
        let eq = ext(&actions) == ext(&reordered);
        (actions.len(), creates.len(), ooo, ok, eq)
    });
    let total_actions: usize = per_seed.iter().map(|r| r.0).sum();
    let total_creates: usize = per_seed.iter().map(|r| r.1).sum();
    let out_of_order = per_seed.iter().filter(|r| r.2).count();
    let replay_ok = per_seed.iter().filter(|r| r.3).count();
    let trace_eq = per_seed.iter().filter(|r| r.4).count();
    t.row(row![seeds, total_actions, total_creates, out_of_order, replay_ok, trace_eq]);
    t.note(
        "'strong replay ok' and 'traces equal' must equal 'seeds'; \
         'out-of-order runs' counts executions where the weak machine actually \
         created views out of identifier order (the interesting cases).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn equivalence_holds_quick() {
        let tables = super::run(true);
        let r = &tables[0].rows()[0];
        assert_eq!(r[0], r[4], "strong replay failed somewhere");
        assert_eq!(r[0], r[5], "trace mismatch somewhere");
    }
}
