//! E5 — the simulation relation *f* (Section 6.2, Theorem 6.26),
//! checked step-by-step on random executions of the composed system.
//!
//! Stress variants: heavy view churn, quiescing churn (system settles),
//! submission-heavy, and non-majority quorum systems.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_core::adversary::SystemAdversary;
use gcs_core::simulation::install_simulation_check;
use gcs_core::system::VsToToSystem;
use gcs_ioa::Runner;
use gcs_model::{Explicit, Majority, ProcId, QuorumSystem};
use std::sync::Arc;

/// One seed's worth of per-step simulation checking: returns
/// `(steps checked, violations)`. Public so the parallel-determinism
/// regression test can drive it with explicit worker counts.
pub fn seed_counts(
    n: u32,
    quorums: &Arc<dyn QuorumSystem>,
    adv: &SystemAdversary,
    seed: u64,
    steps: usize,
) -> (usize, usize) {
    let procs = ProcId::range(n);
    let sys = VsToToSystem::new(procs.clone(), procs, quorums.clone());
    let mut runner = Runner::new(sys, adv.clone(), seed);
    let v = install_simulation_check(&mut runner);
    let exec = runner.run(steps).expect("no invariants installed");
    let violations = v.borrow().len();
    (exec.actions().len(), violations)
}

fn variant(
    t: &mut Table,
    name: &str,
    n: u32,
    quorums: Arc<dyn QuorumSystem>,
    adv: SystemAdversary,
    seeds: u64,
    steps: usize,
) {
    let seed_list: Vec<u64> = (0..seeds).collect();
    let per_seed = par_seeds(&seed_list, |seed| seed_counts(n, &quorums, &adv, seed, steps));
    let checked: usize = per_seed.iter().map(|(c, _)| c).sum();
    let violations: usize = per_seed.iter().map(|(_, v)| v).sum();
    t.row(row![name, n, seeds, checked, violations]);
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E5 — forward simulation f : VStoTO-system → TO-machine (Thm 6.26), \
         per-step checking on random executions",
        &["variant", "n", "seeds", "steps checked", "violations"],
    );
    let seeds = if quick { 2 } else { 12 };
    let steps = if quick { 400 } else { 2_500 };
    variant(
        &mut t,
        "default churn",
        3,
        Arc::new(Majority::new(3)),
        SystemAdversary::default(),
        seeds,
        steps,
    );
    variant(
        &mut t,
        "heavy churn",
        4,
        Arc::new(Majority::new(4)),
        SystemAdversary::default().with_view_prob(0.2),
        seeds,
        steps,
    );
    variant(
        &mut t,
        "quiescing",
        3,
        Arc::new(Majority::new(3)),
        SystemAdversary::quiescing(steps / 4, steps / 2),
        seeds,
        steps,
    );
    variant(
        &mut t,
        "submission heavy",
        3,
        Arc::new(Majority::new(3)),
        SystemAdversary::default().with_bcast_prob(0.8).with_view_prob(0.02),
        seeds,
        steps,
    );
    let grid = Explicit::new(vec![
        [ProcId(0), ProcId(1)].into(),
        [ProcId(0), ProcId(2)].into(),
        [ProcId(1), ProcId(2)].into(),
    ])
    .expect("valid quorums");
    variant(
        &mut t,
        "explicit quorums",
        3,
        Arc::new(grid),
        SystemAdversary::default(),
        seeds,
        steps,
    );
    t.note("Each concrete step is mapped through f and replayed in TO-machine.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn zero_violations_quick() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            assert_eq!(r.last().unwrap(), "0", "simulation failed: {r:?}");
        }
    }
}
