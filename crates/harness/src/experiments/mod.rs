//! The experiments, one module per id. Each exposes
//! `run(quick: bool) -> Vec<Table>`; `quick` shrinks sizes for tests and
//! benches while exercising the same code paths.

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;

/// Runs every experiment (used by the `exp_all` binary).
pub fn run_all(quick: bool) -> Vec<crate::Table> {
    let mut out = Vec::new();
    out.extend(e01::run(quick));
    out.extend(e02::run(quick));
    out.extend(e03::run(quick));
    out.extend(e04::run(quick));
    out.extend(e05::run(quick));
    out.extend(e06::run(quick));
    out.extend(e07::run(quick));
    out.extend(e08::run(quick));
    out.extend(e09::run(quick));
    out.extend(e10::run(quick));
    out.extend(e11::run(quick));
    out.extend(e12::run(quick));
    out.extend(e13::run(quick));
    out.extend(e14::run(quick));
    out
}
