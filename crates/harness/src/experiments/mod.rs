//! The experiments, one module per id. Each exposes
//! `run(quick: bool) -> Vec<Table>`; `quick` shrinks sizes for tests and
//! benches while exercising the same code paths.

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;

/// One experiment entry point: `run(quick) -> tables`.
type ExperimentFn = fn(bool) -> Vec<crate::Table>;

/// Runs every experiment (used by the `exp_all` binary), timing each one
/// into the process-wide registry (`harness_experiment_ms{experiment=..}`).
pub fn run_all(quick: bool) -> Vec<crate::Table> {
    let experiments: [(&str, ExperimentFn); 14] = [
        ("e01", e01::run),
        ("e02", e02::run),
        ("e03", e03::run),
        ("e04", e04::run),
        ("e05", e05::run),
        ("e06", e06::run),
        ("e07", e07::run),
        ("e08", e08::run),
        ("e09", e09::run),
        ("e10", e10::run),
        ("e11", e11::run),
        ("e12", e12::run),
        ("e13", e13::run),
        ("e14", e14::run),
    ];
    let reg = &crate::obs().registry;
    let mut out = Vec::new();
    for (name, run) in experiments {
        let t0 = std::time::Instant::now();
        out.extend(run(quick));
        reg.histogram_labeled("harness_experiment_ms", &[("experiment", name)])
            .record(t0.elapsed().as_millis() as u64);
        reg.counter_labeled("harness_experiments_total", &[("experiment", name)]).inc();
    }
    out
}
