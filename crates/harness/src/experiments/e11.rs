//! E11 — quorum systems and primary-view availability (Section 5).
//!
//! The algorithm fixes a pairwise-intersecting quorum set 𝒬 and calls a
//! view primary when its membership contains a quorum. This experiment
//! enumerates every 2-way partition of a 5-processor system and reports,
//! per quorum system, how often some side can make progress (availability)
//! — verifying as a side effect that *both* sides are never primary
//! (which pairwise intersection guarantees). A live run confirms that a
//! weighted system lets a 2-processor side containing the heavy processor
//! confirm messages where majority cannot.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_model::failure::FailureScript;
use gcs_model::{Majority, ProcId, QuorumSystem, Weighted};
use gcs_vsimpl::{Stack, StackConfig};
use std::collections::BTreeSet;
use std::sync::Arc;

fn all_splits(n: u32) -> Vec<(BTreeSet<ProcId>, BTreeSet<ProcId>)> {
    let ambient: Vec<ProcId> = ProcId::range(n).into_iter().collect();
    let mut out = Vec::new();
    // Nonempty proper subsets, up to complement symmetry.
    for mask in 1u32..(1 << n) - 1 {
        if mask & 1 == 0 {
            continue; // fix p0 on the left to halve the enumeration
        }
        let left: BTreeSet<ProcId> =
            ambient.iter().copied().filter(|p| mask & (1 << p.0) != 0).collect();
        let right: BTreeSet<ProcId> =
            ambient.iter().copied().filter(|p| mask & (1 << p.0) == 0).collect();
        out.push((left, right));
    }
    out
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = 5u32;
    let systems: Vec<(&str, Arc<dyn QuorumSystem>)> = vec![
        ("majority", Arc::new(Majority::new(n as usize))),
        (
            "weighted (p0 has 3 votes)",
            Arc::new(Weighted::new((0..n).map(|i| (ProcId(i), if i == 0 { 3 } else { 1 })))),
        ),
    ];

    let mut avail = Table::new(
        "E11a — primary availability across all 2-way partitions (n = 5)",
        &["quorum system", "splits", "some side primary", "both sides primary", "availability"],
    );
    for (name, q) in &systems {
        let splits = all_splits(n);
        let mut some = 0usize;
        let mut both = 0usize;
        for (l, r) in &splits {
            let lp = q.is_quorum(l);
            let rp = q.is_quorum(r);
            if lp || rp {
                some += 1;
            }
            if lp && rp {
                both += 1;
            }
        }
        avail.row(row![
            name,
            splits.len(),
            some,
            both,
            format!("{:.0}%", 100.0 * some as f64 / splits.len() as f64)
        ]);
    }
    avail.note("'both sides primary' must be 0: quorums pairwise intersect.");

    // Live confirmation: side {p0, p1} after a partition. Under majority
    // it is a minority (no progress); under the weighted system p0's 3
    // votes make it primary (progress).
    let mut live = Table::new(
        "E11b — live run: partition {p0,p1} | {p2,p3,p4}, traffic on the left side",
        &["quorum system", "left side primary", "left deliveries", "right deliveries"],
    );
    let msgs = if quick { 4 } else { 12 };
    // The two quorum systems simulate independently: fan the live runs out.
    let idx: Vec<u64> = (0..systems.len() as u64).collect();
    for cells in par_seeds(&idx, |i| {
        let (name, q) = &systems[i as usize];
        let mut cfg = StackConfig::standard(n, 5, 901);
        cfg.quorums = q.clone();
        let pi = cfg.pi;
        let ambient = ProcId::range(n);
        let left: BTreeSet<ProcId> = [ProcId(0), ProcId(1)].into();
        let right: BTreeSet<ProcId> = ambient.difference(&left).copied().collect();
        let mut script = FailureScript::new();
        script.partition(8 * pi, &[left.clone(), right.clone()], &ambient);
        let mut stack = Stack::new(cfg);
        stack.load_failures(&script);
        for i in 0..msgs {
            stack.schedule_bcast(8 * pi + 10 + i as u64 * 20, ProcId(i as u32 % 2));
        }
        stack.run_until(8 * pi + 300 * pi);
        let left_primary = q.is_quorum(&left);
        let ld = stack.delivered(ProcId(0)).len();
        let rd = stack.delivered(ProcId(2)).len();
        row![name, left_primary, ld, rd].to_vec()
    }) {
        live.row(&cells);
    }
    live.note(
        "Expected shape: under majority the 2-member side confirms nothing; \
         under the weighted system it is primary and delivers its traffic. \
         The right side receives nothing new in either case (its traffic \
         sources are on the left).",
    );
    vec![avail, live]
}

#[cfg(test)]
mod tests {
    #[test]
    fn intersection_safety_and_weighted_progress() {
        let tables = super::run(true);
        for r in tables[0].rows() {
            assert_eq!(r[3], "0", "two concurrent primaries possible: {r:?}");
        }
        let rows = tables[1].rows();
        assert_eq!(rows[0][1], "false");
        assert_eq!(rows[0][2], "0", "minority side must not deliver under majority");
        assert_eq!(rows[1][1], "true");
        assert_ne!(rows[1][2], "0", "weighted primary side must deliver");
    }
}
