//! E14 (extension) — what the partitionable stack costs: token ring +
//! membership vs a fixed-sequencer baseline.
//!
//! The paper's service buys partitionable membership, per-view total
//! order, and safe indications. This experiment quantifies the price in
//! a *stable* network against the classic fixed sequencer (two hops,
//! `n + 1` packets per value, no fault tolerance whatsoever): latency
//! ~π vs ~2δ and the packet amortization of the token. The flip side is
//! the last column — under a sequencer crash the baseline delivers
//! nothing, while the paper's stack reforms and continues.

use crate::par::par_seeds;
use crate::{row, Table};
use gcs_model::failure::FailureScript;
use gcs_model::{ProcId, Time, Value};
use gcs_netsim::{Engine, NetConfig};
use gcs_vsimpl::stats::TraceStats;
use gcs_vsimpl::{SequencerNode, Stack, StackConfig};
use std::collections::BTreeSet;

struct Cost {
    mean_latency: f64,
    packets_per_value: f64,
    survives_leader_crash: bool,
}

fn token_ring_cost(n: u32, msgs: usize, crash_leader: bool, seed: u64) -> Cost {
    let mut stack = Stack::new(StackConfig::standard(n, 5, seed));
    let pi = stack.config().pi;
    let t0 = 4 * pi;
    if crash_leader {
        let ambient = ProcId::range(n);
        let survivors: BTreeSet<ProcId> =
            ambient.iter().copied().filter(|p| *p != ProcId(0)).collect();
        let mut script = FailureScript::new();
        script.partition(t0 + 5, &[survivors, [ProcId(0)].into()], &ambient);
        stack.load_failures(&script);
    }
    for i in 0..msgs {
        // Submit away from the (possibly crashed) leader.
        stack.schedule_bcast(t0 + 10 + i as Time * 10, ProcId(1 + (i as u32 % (n - 1))));
    }
    // Keep the horizon tight in the stable case so the packet count
    // reflects the active period, not hours of idle probing; the crash
    // case needs the long horizon for reformation.
    let horizon = if crash_leader { t0 + 400 * pi } else { t0 + msgs as Time * 10 + 12 * pi };
    stack.run_until(horizon);
    let stats = gcs_vsimpl::stack_stats(&stack);
    let routed = stack.net_stats().routed;
    let survivors = if crash_leader { n - 1 } else { n };
    let complete = (0..n)
        .filter(|&i| ProcId(i) != ProcId(0) || !crash_leader)
        .all(|i| stack.delivered(ProcId(i)).len() == msgs);
    Cost {
        mean_latency: TraceStats::mean(&stats.first_delivery_latencies),
        packets_per_value: routed as f64 / msgs as f64,
        survives_leader_crash: complete && survivors > 0,
    }
}

fn sequencer_cost(n: u32, msgs: usize, crash_leader: bool, seed: u64) -> Cost {
    let procs = ProcId::range(n);
    let nodes = procs.iter().map(|&p| SequencerNode::new(p, procs.clone()));
    let mut engine =
        Engine::new(nodes, NetConfig { delta_min: 1, delta: 5, ..NetConfig::default() }, seed);
    if crash_leader {
        let mut script = FailureScript::new();
        script.crash(5, ProcId(0));
        engine.load_failures(&script);
    }
    for i in 0..msgs {
        engine.schedule_input(
            10 + i as Time * 10,
            ProcId(1 + (i as u32 % (n - 1))),
            Value::from_u64(i as u64 + 1),
        );
    }
    engine.run_until(10_000);
    let stats = TraceStats::from_trace(engine.trace(), n);
    let complete = (1..n).all(|i| engine.process(ProcId(i)).delivered().len() == msgs);
    Cost {
        mean_latency: TraceStats::mean(&stats.first_delivery_latencies),
        packets_per_value: engine.stats().routed as f64 / msgs as f64,
        survives_leader_crash: complete,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E14 — cost of partitionability: token-ring stack vs fixed-sequencer baseline \
         (stable network, δ = 5)",
        &[
            "system",
            "n",
            "values",
            "mean first-delivery latency",
            "packets per value",
            "survives leader crash",
        ],
    );
    let msgs = if quick { 10 } else { 40 };
    let sizes: &[u32] = if quick { &[3] } else { &[3, 5, 9] };
    // Each group size yields two rows (stack, baseline); compute both in
    // one parallel task per size and append the pairs in size order.
    let row_pairs = par_seeds(&sizes.iter().map(|&n| n as u64).collect::<Vec<_>>(), |n64| {
        let n = n64 as u32;
        let tr = token_ring_cost(n, msgs, false, 140 + n as u64);
        let tr_crash = token_ring_cost(n, 6, true, 150 + n as u64);
        let ring = row![
            "token ring (this paper)",
            n,
            msgs,
            format!("{:.1}", tr.mean_latency),
            format!("{:.1}", tr.packets_per_value),
            if tr_crash.survives_leader_crash { "✓ (reforms)" } else { "✗" }
        ]
        .to_vec();
        let sq = sequencer_cost(n, msgs, false, 160 + n as u64);
        let sq_crash = sequencer_cost(n, 6, true, 170 + n as u64);
        let seq = row![
            "fixed sequencer",
            n,
            msgs,
            format!("{:.1}", sq.mean_latency),
            format!("{:.1}", sq.packets_per_value),
            if sq_crash.survives_leader_crash { "✓" } else { "✗ (stalls)" }
        ]
        .to_vec();
        [ring, seq]
    });
    for [ring, seq] in row_pairs {
        t.row(&ring);
        t.row(&seq);
    }
    t.note(
        "Expected shape: the sequencer wins raw stable-network latency (~2δ \
         vs a token rotation) and loses everything on a sequencer crash; the \
         token ring pays ~π of latency for partitionable membership, safe \
         indications, and automatic reformation. Packet counts include \
         membership probes for the stack (its steady-state overhead).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tradeoff_shape_holds() {
        let tables = super::run(true);
        let rows = tables[0].rows();
        let tr_lat: f64 = rows[0][3].parse().unwrap();
        let sq_lat: f64 = rows[1][3].parse().unwrap();
        assert!(sq_lat < tr_lat, "sequencer must win stable latency ({sq_lat} vs {tr_lat})");
        assert!(rows[0][5].starts_with('✓'), "stack must survive leader crash");
        assert!(rows[1][5].starts_with('✗'), "baseline must stall on sequencer crash");
    }
}
