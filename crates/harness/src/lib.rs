//! The experiment harness: every formal artifact and analytical claim of
//! the paper, regenerated as a measured table or series.
//!
//! One binary per experiment (`cargo run -p gcs-harness --bin exp_<id>`),
//! with the experiment logic in [`experiments`] so tests and benches can
//! drive reduced versions of the same code. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for captured results.
//!
//! | id | paper artifact | binary |
//! |----|----------------|--------|
//! | E1 | Fig 3 / §3.1 — TO-machine trace conformance | `exp_e1_to_conformance` |
//! | E2 | Fig 5, Thm 7.1/7.2 — TO bounds | `exp_e2_to_bounds` |
//! | E3 | Fig 6, Lemma 4.2 — VS conformance | `exp_e3_vs_conformance` |
//! | E4 | Fig 7, §8 bounds — VS bounds | `exp_e4_vs_bounds` |
//! | E5 | Figs 8–10, Thm 6.26 — simulation relation | `exp_e5_simulation` |
//! | E6 | Lemma 4.1, §6.1 — invariant suite | `exp_e6_invariants` |
//! | E7 | Fig 11/12 — recovery decomposition | `exp_e7_recovery` |
//! | E8 | §4.1 remark — WeakVS equivalence | `exp_e8_weakvs` |
//! | E9 | intro #5 / fn.5 — safe-delivery ablation | `exp_e9_gap_ablation` |
//! | E10 | §8 fn.7 — membership ablation | `exp_e10_membership` |
//! | E11 | §5 — quorum systems ablation | `exp_e11_quorum` |
//! | E12 | §3 fn.3 — sequentially consistent memory | `exp_e12_seqmem` |
//! | E13 | extension — state-exchange cost growth | `exp_e13_exchange_cost` |
//! | E14 | extension — baseline comparison (fixed sequencer) | `exp_e14_baseline` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod par;
pub mod scenarios;
pub mod table;

pub use par::{par_seeds, par_seeds_with};
pub use table::Table;

/// The process-wide observability sink for harness runs. The fan-out
/// machinery and `run_all` record into it unconditionally (relaxed
/// atomics; negligible next to any experiment); `exp_all --metrics`
/// serves it over HTTP while the experiments run.
pub fn obs() -> &'static gcs_obs::Obs {
    static OBS: std::sync::OnceLock<gcs_obs::Obs> = std::sync::OnceLock::new();
    OBS.get_or_init(gcs_obs::Obs::new)
}
