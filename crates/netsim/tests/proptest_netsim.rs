//! Property-based tests of the discrete-event engine: determinism,
//! good-channel delay bounds, bad-processor freeze/replay, and failure
//! scripts as pure state.

use gcs_model::failure::FailureScript;
use gcs_model::{ProcId, Time};
use gcs_netsim::{Context, Engine, NetConfig, Process, TraceEvent};
use proptest::prelude::*;

/// Relays every message it receives to the next processor (mod n), and
/// emits `(hop, time)` on each receipt.
struct Relay {
    id: ProcId,
    n: u32,
}

impl Process for Relay {
    type Msg = u32; // remaining hops
    type Input = u32;
    type Event = (u32, Time);

    fn id(&self) -> ProcId {
        self.id
    }
    fn on_start(&mut self, _ctx: &mut Context<'_, u32, (u32, Time)>) {}
    fn on_message(&mut self, _from: ProcId, hops: u32, ctx: &mut Context<'_, u32, (u32, Time)>) {
        ctx.emit((hops, ctx.now()));
        if hops > 0 {
            ctx.send(ProcId((self.id.0 + 1) % self.n), hops - 1);
        }
    }
    fn on_timer(&mut self, _: u64, _: &mut Context<'_, u32, (u32, Time)>) {}
    fn on_input(&mut self, hops: u32, ctx: &mut Context<'_, u32, (u32, Time)>) {
        ctx.send(ProcId((self.id.0 + 1) % self.n), hops);
    }
}

fn build(n: u32, delta: Time, seed: u64) -> Engine<Relay> {
    let cfg = NetConfig { delta_min: 1, delta: delta.max(1), ..NetConfig::default() };
    Engine::new((0..n).map(|i| Relay { id: ProcId(i), n }), cfg, seed)
}

proptest! {
    /// Identical configuration + seed ⇒ identical trace; different seeds
    /// are allowed to differ (and usually do).
    #[test]
    fn runs_are_pure_functions_of_seed(
        n in 2u32..6,
        delta in 1u64..10,
        seed in any::<u64>(),
        hops in 1u32..20,
    ) {
        let run = |s| {
            let mut e = build(n, delta, s);
            e.schedule_input(5, ProcId(0), hops);
            e.run_until(10_000);
            format!("{:?}", e.trace())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// On good channels, each relay hop takes at least 1 and at most δ
    /// ticks: the k-th receipt happens within [5 + k, 5 + kδ].
    #[test]
    fn good_channel_hops_respect_delta(
        n in 2u32..6,
        delta in 1u64..10,
        seed in any::<u64>(),
        hops in 1u32..15,
    ) {
        let mut e = build(n, delta, seed);
        e.schedule_input(5, ProcId(0), hops);
        e.run_until(100_000);
        let mut receipts: Vec<(u32, Time)> = e
            .trace()
            .events()
            .iter()
            .filter_map(|ev| match ev.action {
                TraceEvent::App(x) => Some(x),
                _ => None,
            })
            .collect();
        receipts.sort_by_key(|(h, _)| std::cmp::Reverse(*h));
        prop_assert_eq!(receipts.len() as u32, hops + 1);
        for (k, (_, t)) in receipts.iter().enumerate() {
            let k = k as u64 + 1;
            prop_assert!(*t >= 5 + k && *t <= 5 + k * delta.max(1),
                "hop {k} at {t} outside [{}, {}]", 5 + k, 5 + k * delta.max(1));
        }
    }

    /// A bad interval only delays: everything sent while a processor is
    /// frozen arrives after recovery, nothing is lost.
    #[test]
    fn bad_processor_preserves_messages(
        seed in any::<u64>(),
        crash_at in 1u64..20,
        recover_after in 1u64..200,
    ) {
        let n = 3u32;
        let mut e = build(n, 3, seed);
        let mut script = FailureScript::new();
        script.crash(crash_at, ProcId(1)).recover(crash_at + recover_after, ProcId(1));
        e.load_failures(&script);
        // p0 sends a 1-hop message to p1 (p1 emits, forwards to p2).
        e.schedule_input(crash_at + 1, ProcId(0), 1);
        e.run_until(crash_at + recover_after + 1_000);
        // p1 emitted despite being frozen at delivery time.
        let p1_got = e.trace().events().iter().any(|ev| matches!(
            ev.action, TraceEvent::App((1, t)) if t >= crash_at
        ));
        prop_assert!(p1_got, "frozen processor lost a message");
        prop_assert_eq!(e.stats().dropped, 0);
    }
}
