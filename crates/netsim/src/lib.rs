//! A deterministic discrete-event network simulator implementing the
//! timed asynchronous failure model of the paper (Sections 3.2, 7, 8).
//!
//! The simulator provides exactly the environment the paper's conditional
//! properties quantify over:
//!
//! - while a processor's failure status is **good**, it takes enabled
//!   steps immediately (its event handlers run at the scheduled virtual
//!   time, and anything a handler sends or schedules happens with no
//!   processing delay);
//! - while it is **bad**, it takes no locally controlled steps: events
//!   destined for it are *stashed*, and replayed in order when it turns
//!   good again (processors "do not crash with a loss of state" — a bad
//!   interval is an arbitrarily long delay);
//! - while it is **ugly**, each of its events is postponed by a random
//!   amount;
//! - a **good** channel delivers every packet within δ of sending; a
//!   **bad** channel delivers nothing; an **ugly** channel may drop a
//!   packet or deliver it after an arbitrary (bounded, configurable)
//!   delay.
//!
//! Failure statuses evolve according to a [`gcs_model::failure::FailureScript`]; each change
//! is also recorded into the simulation's timed trace, which is what the
//! property checkers of `gcs-core` consume.
//!
//! All randomness is drawn from a single seeded ChaCha8 stream and the
//! event queue breaks time ties deterministically, so a run is a pure
//! function of `(processes, scripts, seed)`.
//!
//! # Example
//!
//! A two-process ping-pong over a lossy network:
//!
//! ```
//! use gcs_netsim::{Context, Engine, NetConfig, Process};
//! use gcs_model::ProcId;
//!
//! struct Pinger { id: ProcId, peer: ProcId, pings: u32 }
//!
//! impl Process for Pinger {
//!     type Msg = u32;
//!     type Input = ();
//!     type Event = u32;
//!     fn id(&self) -> ProcId { self.id }
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
//!         if self.id == ProcId(0) { ctx.send(self.peer, 0); }
//!     }
//!     fn on_message(&mut self, _from: ProcId, n: u32, ctx: &mut Context<'_, u32, u32>) {
//!         ctx.emit(n);
//!         self.pings += 1;
//!         if n < 10 { ctx.send(self.peer, n + 1); }
//!     }
//!     fn on_timer(&mut self, _k: u64, _ctx: &mut Context<'_, u32, u32>) {}
//!     fn on_input(&mut self, _i: (), _ctx: &mut Context<'_, u32, u32>) {}
//! }
//!
//! let procs = vec![
//!     Pinger { id: ProcId(0), peer: ProcId(1), pings: 0 },
//!     Pinger { id: ProcId(1), peer: ProcId(0), pings: 0 },
//! ];
//! let mut engine = Engine::new(procs, NetConfig::default(), 42);
//! engine.run_until(1_000);
//! assert_eq!(engine.trace().len(), 11); // 0..=10 emitted
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub use engine::{CollectedEffects, Context, Engine, NetConfig, NetStats, Process, TraceEvent};
