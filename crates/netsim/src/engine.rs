//! The discrete-event engine.

use gcs_ioa::TimedTrace;
use gcs_model::failure::FailureScript;
use gcs_model::{FailureMap, ProcId, Status, Subject, Time};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// A simulated process: an event-driven state machine at one network
/// location.
///
/// Handlers run only while the process's failure status allows it; a good
/// process's handler runs exactly at the scheduled virtual time, which is
/// the paper's "a good process takes steps with no time delay after they
/// become enabled".
pub trait Process {
    /// The network message type.
    type Msg: Clone + fmt::Debug;
    /// The client-input type (submitted via [`Engine::schedule_input`]).
    type Input: Clone + fmt::Debug;
    /// The trace-event type (recorded via [`Context::emit`]).
    type Event: Clone + fmt::Debug;

    /// This process's location.
    fn id(&self) -> ProcId;
    /// Called once at time 0.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>);
    /// Called when a message arrives.
    fn on_message(
        &mut self,
        from: ProcId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    );
    /// Called when a timer set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, Self::Msg, Self::Event>);
    /// Called when a scheduled client input arrives.
    fn on_input(&mut self, input: Self::Input, ctx: &mut Context<'_, Self::Msg, Self::Event>);
}

/// Network timing parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Minimum good-channel delay.
    pub delta_min: Time,
    /// Maximum good-channel delay (the paper's δ).
    pub delta: Time,
    /// Maximum delay an ugly channel or processor may add.
    pub ugly_max_delay: Time,
    /// Probability that an ugly channel drops a packet.
    pub ugly_drop_prob: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { delta_min: 1, delta: 5, ugly_max_delay: 50, ugly_drop_prob: 0.3 }
    }
}

impl NetConfig {
    /// A configuration with a fixed good-channel delay δ.
    pub fn with_delta(delta: Time) -> Self {
        NetConfig { delta_min: delta.max(1), delta: delta.max(1), ..Default::default() }
    }
}

/// A recorded trace event: something a process emitted, or a
/// failure-status change.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent<E> {
    /// Emitted by a process via [`Context::emit`].
    App(E),
    /// A failure-status input action from the script.
    Fail {
        /// The location or directed pair.
        subject: Subject,
        /// The new status.
        status: Status,
    },
}

/// What a handler may do: read the clock, send messages, set timers, and
/// emit trace events. Effects are collected and applied by the engine
/// when the handler returns.
pub struct Context<'a, M, E> {
    now: Time,
    sends: &'a mut Vec<(ProcId, M)>,
    timers: &'a mut Vec<(Time, u64)>,
    emits: &'a mut Vec<E>,
}

impl<M, E> Context<'_, M, E> {
    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to` (subject to the channel's failure status).
    /// Sending to oneself is allowed and goes through the same channel
    /// rules (self-links are good unless a script says otherwise).
    pub fn send(&mut self, to: ProcId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends `msg` to every processor in `set` (including the sender, if
    /// listed).
    pub fn multicast<'s>(&mut self, set: impl IntoIterator<Item = &'s ProcId>, msg: M)
    where
        M: Clone,
    {
        for &to in set {
            self.send(to, msg.clone());
        }
    }

    /// Schedules `on_timer(kind)` after `delay` ticks. Timers are not
    /// cancellable; handlers should ignore stale kinds.
    pub fn set_timer(&mut self, delay: Time, kind: u64) {
        self.timers.push((delay, kind));
    }

    /// Records a trace event at the current time.
    pub fn emit(&mut self, event: E) {
        self.emits.push(event);
    }
}

/// A collector for driving a [`Process`] handler directly in tests,
/// without an engine: build one, borrow a [`Context`] from it, call the
/// handler, then inspect what it sent, scheduled, and emitted.
///
/// ```
/// use gcs_netsim::CollectedEffects;
/// let mut fx: CollectedEffects<String, u32> = CollectedEffects::new(5);
/// {
///     let mut ctx = fx.ctx();
///     ctx.send(gcs_model::ProcId(1), "hello".to_string());
///     ctx.set_timer(10, 7);
///     ctx.emit(42);
/// }
/// assert_eq!(fx.sends.len(), 1);
/// assert_eq!(fx.timers, vec![(10, 7)]);
/// assert_eq!(fx.emits, vec![42]);
/// ```
#[derive(Debug)]
pub struct CollectedEffects<M, E> {
    now: Time,
    /// Messages sent, in order.
    pub sends: Vec<(ProcId, M)>,
    /// Timers set: `(delay, kind)`.
    pub timers: Vec<(Time, u64)>,
    /// Events emitted.
    pub emits: Vec<E>,
}

impl<M, E> CollectedEffects<M, E> {
    /// Creates a collector whose contexts report virtual time `now`.
    pub fn new(now: Time) -> Self {
        CollectedEffects { now, sends: Vec::new(), timers: Vec::new(), emits: Vec::new() }
    }

    /// Advances the reported virtual time.
    pub fn set_now(&mut self, now: Time) {
        self.now = now;
    }

    /// Borrows a context that appends into this collector.
    pub fn ctx(&mut self) -> Context<'_, M, E> {
        Context {
            now: self.now,
            sends: &mut self.sends,
            timers: &mut self.timers,
            emits: &mut self.emits,
        }
    }

    /// Drains and returns the collected sends.
    pub fn take_sends(&mut self) -> Vec<(ProcId, M)> {
        std::mem::take(&mut self.sends)
    }
}

/// Per-link good-delay overrides. Processes almost always occupy a dense
/// id space (`ProcId(0..n)`), so the overrides live in a flat
/// `width × width` table probed with one multiply-add on every routed
/// packet; a pathologically sparse id space falls back to an ordered map.
/// Both representations answer identical queries.
#[derive(Clone, Debug)]
enum LinkDelays {
    Dense { width: usize, table: Vec<(Time, Time)> },
    Sparse { default: (Time, Time), map: BTreeMap<(ProcId, ProcId), (Time, Time)> },
}

impl LinkDelays {
    /// Beyond this id width the dense table would waste memory.
    const DENSE_MAX_WIDTH: usize = 1024;

    fn new<'a>(ids: impl Iterator<Item = &'a ProcId>, default: (Time, Time)) -> Self {
        let width = ids.map(|p| p.0 as usize + 1).max().unwrap_or(0);
        if width <= Self::DENSE_MAX_WIDTH {
            LinkDelays::Dense { width, table: vec![default; width * width] }
        } else {
            LinkDelays::Sparse { default, map: BTreeMap::new() }
        }
    }

    fn set(&mut self, p: ProcId, q: ProcId, range: (Time, Time)) {
        match self {
            LinkDelays::Dense { width, table } => {
                let (f, t) = (p.0 as usize, q.0 as usize);
                // Routed packets always travel between known processes,
                // whose ids fit the table; an override naming an unknown
                // location can never be consulted (such messages vanish
                // before the delay lookup).
                if f < *width && t < *width {
                    table[f * *width + t] = range;
                }
            }
            LinkDelays::Sparse { map, .. } => {
                map.insert((p, q), range);
            }
        }
    }

    #[inline]
    fn get(&self, p: ProcId, q: ProcId) -> (Time, Time) {
        match self {
            LinkDelays::Dense { width, table } => table[p.0 as usize * width + q.0 as usize],
            LinkDelays::Sparse { default, map } => map.get(&(p, q)).copied().unwrap_or(*default),
        }
    }
}

#[derive(Clone, Debug)]
enum Payload<M, I> {
    Deliver { from: ProcId, msg: M },
    Timer { kind: u64 },
    Input { input: I },
    Start,
}

#[derive(Clone, Debug)]
struct QueuedEvent<M, I> {
    time: Time,
    seq: u64,
    to: ProcId,
    payload: Payload<M, I>,
}

impl<M, I> PartialEq for QueuedEvent<M, I> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M, I> Eq for QueuedEvent<M, I> {}
impl<M, I> PartialOrd for QueuedEvent<M, I> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, I> Ord for QueuedEvent<M, I> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Events parked for an unreachable destination, per processor.
type Stash<M, I> = BTreeMap<ProcId, Vec<QueuedEvent<M, I>>>;

/// The deterministic discrete-event engine.
pub struct Engine<P: Process> {
    procs: BTreeMap<ProcId, P>,
    heap: BinaryHeap<Reverse<QueuedEvent<P::Msg, P::Input>>>,
    fail_heap: Vec<gcs_model::FailureEvent>, // sorted descending, popped from back
    stash: Stash<P::Msg, P::Input>,
    now: Time,
    seq: u64,
    failures: FailureMap,
    config: NetConfig,
    rng: ChaCha8Rng,
    trace: TimedTrace<TraceEvent<P::Event>>,
    started: bool,
    link_delays: LinkDelays,
    stats: NetStats,
    metrics: Option<EngineMetrics>,
}

/// Live registry counters mirroring [`NetStats`]; present only after
/// [`Engine::attach_metrics`], so unobserved engines pay nothing.
struct EngineMetrics {
    routed: gcs_obs::Counter,
    dropped: gcs_obs::Counter,
    stashed: gcs_obs::Counter,
    handled: gcs_obs::Counter,
}

/// Network-level counters maintained by the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets accepted for delivery (routed with a delay).
    pub routed: u64,
    /// Packets dropped by bad or ugly channels.
    pub dropped: u64,
    /// Events stashed because the destination processor was bad.
    pub stashed: u64,
    /// Handler invocations performed.
    pub handled: u64,
}

impl<P: Process> Engine<P> {
    /// Creates an engine hosting `processes`, with network parameters
    /// `config` and a deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if two processes share an id.
    pub fn new(processes: impl IntoIterator<Item = P>, config: NetConfig, seed: u64) -> Self {
        let mut procs = BTreeMap::new();
        let mut heap = BinaryHeap::new();
        let mut seq = 0;
        for p in processes {
            let id = p.id();
            assert!(procs.insert(id, p).is_none(), "duplicate process id {id}");
            heap.push(Reverse(QueuedEvent { time: 0, seq, to: id, payload: Payload::Start }));
            seq += 1;
        }
        let link_delays = LinkDelays::new(procs.keys(), (config.delta_min, config.delta));
        Engine {
            procs,
            heap,
            fail_heap: Vec::new(),
            stash: BTreeMap::new(),
            now: 0,
            seq,
            failures: FailureMap::all_good(),
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            trace: TimedTrace::new(),
            started: false,
            link_delays,
            stats: NetStats::default(),
            metrics: None,
        }
    }

    /// Network-level counters for the run so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Mirrors this engine's [`NetStats`] into live counters in
    /// `registry` (`sim_packets_routed_total`, `sim_packets_dropped_total`,
    /// `sim_events_stashed_total`, `sim_events_handled_total`, labeled
    /// with `engine`), so a long simulation can be scraped while it runs.
    /// Counts accumulated before attachment are credited immediately.
    pub fn attach_metrics(&mut self, registry: &gcs_obs::Registry, engine_label: &str) {
        let l = [("engine", engine_label)];
        let m = EngineMetrics {
            routed: registry.counter_labeled("sim_packets_routed_total", &l),
            dropped: registry.counter_labeled("sim_packets_dropped_total", &l),
            stashed: registry.counter_labeled("sim_events_stashed_total", &l),
            handled: registry.counter_labeled("sim_events_handled_total", &l),
        };
        m.routed.add(self.stats.routed);
        m.dropped.add(self.stats.dropped);
        m.stashed.add(self.stats.stashed);
        m.handled.add(self.stats.handled);
        self.metrics = Some(m);
    }

    /// Overrides the good-channel delay range for the directed link
    /// `p → q` (heterogeneous topologies, e.g. a WAN hop between two LAN
    /// islands). Links without an override use the global
    /// [`NetConfig`] range.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `max` is zero.
    pub fn set_link_delay(&mut self, p: ProcId, q: ProcId, min: Time, max: Time) {
        assert!(min <= max && max > 0, "invalid delay range {min}..={max}");
        self.link_delays.set(p, q, (min, max));
    }

    /// Overrides the delay range both ways between `p` and `q`.
    pub fn set_pair_delay(&mut self, p: ProcId, q: ProcId, min: Time, max: Time) {
        self.set_link_delay(p, q, min, max);
        self.set_link_delay(q, p, min, max);
    }

    /// Loads a failure script; its events fire at their scheduled times
    /// and are recorded in the trace.
    pub fn load_failures(&mut self, script: &FailureScript) {
        let mut evs = script.sorted_events();
        evs.reverse();
        self.fail_heap = evs;
    }

    /// Schedules a client input for `proc` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or `proc` unknown.
    pub fn schedule_input(&mut self, time: Time, proc: ProcId, input: P::Input) {
        assert!(time >= self.now, "input scheduled in the past");
        assert!(self.procs.contains_key(&proc), "unknown process {proc}");
        self.seq += 1;
        self.heap.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            to: proc,
            payload: Payload::Input { input },
        }));
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The recorded timed trace.
    pub fn trace(&self) -> &TimedTrace<TraceEvent<P::Event>> {
        &self.trace
    }

    /// Consumes the engine, returning the trace.
    pub fn into_trace(self) -> TimedTrace<TraceEvent<P::Event>> {
        self.trace
    }

    /// Read access to a process (e.g. to inspect final state in tests).
    pub fn process(&self, p: ProcId) -> &P {
        &self.procs[&p]
    }

    /// Iterates over all processes.
    pub fn processes(&self) -> impl Iterator<Item = (&ProcId, &P)> {
        self.procs.iter()
    }

    /// The current failure map.
    pub fn failures(&self) -> &FailureMap {
        &self.failures
    }

    /// Runs the simulation until virtual time `t_end` (inclusive): all
    /// events with `time ≤ t_end` are processed. Returns the number of
    /// handler invocations performed.
    pub fn run_until(&mut self, t_end: Time) -> usize {
        self.started = true;
        let mut handled = 0;
        loop {
            // Interleave failure events with regular events by time;
            // failure events at equal times fire first (the status at time
            // t governs deliveries at time t).
            let next_fail = self.fail_heap.last().map(|e| e.time);
            let next_ev = self.heap.peek().map(|Reverse(e)| e.time);
            match (next_fail, next_ev) {
                (Some(tf), _) if tf <= t_end && next_ev.is_none_or(|te| tf <= te) => {
                    let ev = self.fail_heap.pop().expect("peeked");
                    self.advance_to(ev.time);
                    self.apply_failure(ev);
                }
                (_, Some(te)) if te <= t_end => {
                    let Reverse(ev) = self.heap.pop().expect("peeked");
                    self.advance_to(ev.time);
                    handled += self.dispatch(ev) as usize;
                }
                _ => break,
            }
        }
        self.advance_to(t_end);
        handled
    }

    fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.now);
        self.now = t;
    }

    fn apply_failure(&mut self, ev: gcs_model::FailureEvent) {
        let before = self.failures.clone();
        self.failures.apply(&ev);
        self.trace.push(ev.time, TraceEvent::Fail { subject: ev.subject, status: ev.status });
        // A processor turning good again replays its stashed events now.
        if let Subject::Loc(p) = ev.subject {
            if before.loc(p) != Status::Good && ev.status == Status::Good {
                if let Some(stashed) = self.stash.remove(&p) {
                    for mut qe in stashed {
                        self.seq += 1;
                        qe.time = self.now;
                        qe.seq = self.seq;
                        self.heap.push(Reverse(qe));
                    }
                }
            }
        }
    }

    /// Returns whether a handler actually ran.
    fn dispatch(&mut self, ev: QueuedEvent<P::Msg, P::Input>) -> bool {
        let p = ev.to;
        match self.failures.loc(p) {
            Status::Bad => {
                // Frozen: hold the event until recovery.
                self.stats.stashed += 1;
                if let Some(m) = &self.metrics {
                    m.stashed.inc();
                }
                self.stash.entry(p).or_default().push(ev);
                return false;
            }
            Status::Ugly => {
                // Nondeterministic speed: postpone by a random amount
                // (with a small chance of handling now to avoid livelock
                // in infinitely-ugly configurations).
                if self.rng.gen_bool(0.5) {
                    let delay = self.rng.gen_range(1..=self.config.ugly_max_delay);
                    self.seq += 1;
                    let requeued = QueuedEvent { time: self.now + delay, seq: self.seq, ..ev };
                    self.heap.push(Reverse(requeued));
                    return false;
                }
            }
            Status::Good => {}
        }
        let mut sends = Vec::new();
        let mut timers = Vec::new();
        let mut emits = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                sends: &mut sends,
                timers: &mut timers,
                emits: &mut emits,
            };
            let proc = self.procs.get_mut(&p).expect("known process");
            match ev.payload {
                Payload::Start => proc.on_start(&mut ctx),
                Payload::Deliver { from, msg } => proc.on_message(from, msg, &mut ctx),
                Payload::Timer { kind } => proc.on_timer(kind, &mut ctx),
                Payload::Input { input } => proc.on_input(input, &mut ctx),
            }
        }
        for e in emits {
            self.trace.push(self.now, TraceEvent::App(e));
        }
        for (delay, kind) in timers {
            self.seq += 1;
            self.heap.push(Reverse(QueuedEvent {
                time: self.now + delay,
                seq: self.seq,
                to: p,
                payload: Payload::Timer { kind },
            }));
        }
        for (to, msg) in sends {
            self.route(p, to, msg);
        }
        self.stats.handled += 1;
        if let Some(m) = &self.metrics {
            m.handled.inc();
        }
        true
    }

    fn route(&mut self, from: ProcId, to: ProcId, msg: P::Msg) {
        if !self.procs.contains_key(&to) {
            return; // messages to unknown locations vanish
        }
        let status = if from == to { Status::Good } else { self.failures.link(from, to) };
        let (dmin, dmax) = self.link_delays.get(from, to);
        let delay = match status {
            Status::Good => {
                if dmin >= dmax {
                    dmax
                } else {
                    self.rng.gen_range(dmin..=dmax)
                }
            }
            Status::Bad => {
                self.stats.dropped += 1;
                if let Some(m) = &self.metrics {
                    m.dropped.inc();
                }
                return;
            }
            Status::Ugly => {
                if self.rng.gen_bool(self.config.ugly_drop_prob) {
                    self.stats.dropped += 1;
                    if let Some(m) = &self.metrics {
                        m.dropped.inc();
                    }
                    return;
                }
                self.rng.gen_range(1..=self.config.ugly_max_delay)
            }
        };
        self.stats.routed += 1;
        if let Some(m) = &self.metrics {
            m.routed.inc();
        }
        self.seq += 1;
        self.heap.push(Reverse(QueuedEvent {
            time: self.now + delay,
            seq: self.seq,
            to,
            payload: Payload::Deliver { from, msg },
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every message back; counts receipts; emits on timer.
    struct Echo {
        id: ProcId,
        received: Vec<(ProcId, u64)>,
    }

    impl Echo {
        fn new(i: u32) -> Self {
            Echo { id: ProcId(i), received: Vec::new() }
        }
    }

    impl Process for Echo {
        type Msg = u64;
        type Input = u64;
        type Event = (ProcId, u64);
        fn id(&self) -> ProcId {
            self.id
        }
        fn on_start(&mut self, _ctx: &mut Context<'_, u64, (ProcId, u64)>) {}
        fn on_message(
            &mut self,
            from: ProcId,
            msg: u64,
            ctx: &mut Context<'_, u64, (ProcId, u64)>,
        ) {
            self.received.push((from, msg));
            ctx.emit((from, msg));
        }
        fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, u64, (ProcId, u64)>) {
            ctx.emit((self.id, 1_000_000 + kind));
        }
        fn on_input(&mut self, input: u64, ctx: &mut Context<'_, u64, (ProcId, u64)>) {
            // Broadcast the input to everyone we know (just p0..p2 here).
            for i in 0..3 {
                ctx.send(ProcId(i), input);
            }
        }
    }

    fn engine(seed: u64) -> Engine<Echo> {
        Engine::new((0..3).map(Echo::new), NetConfig::default(), seed)
    }

    #[test]
    fn good_channels_deliver_within_delta() {
        let mut e = engine(1);
        e.schedule_input(10, ProcId(0), 7);
        e.run_until(10 + NetConfig::default().delta);
        for (_, p) in e.processes() {
            assert_eq!(p.received, vec![(ProcId(0), 7)]);
        }
    }

    #[test]
    fn bad_channels_drop() {
        let mut e = engine(1);
        let mut script = FailureScript::new();
        script.set_pair(0, ProcId(0), ProcId(1), Status::Bad);
        e.load_failures(&script);
        e.schedule_input(10, ProcId(0), 7);
        e.run_until(500);
        assert!(e.process(ProcId(1)).received.is_empty());
        assert_eq!(e.process(ProcId(2)).received.len(), 1);
    }

    #[test]
    fn bad_processor_freezes_and_replays_on_recovery() {
        let mut e = engine(1);
        let mut script = FailureScript::new();
        script.crash(5, ProcId(1)).recover(200, ProcId(1));
        e.load_failures(&script);
        e.schedule_input(10, ProcId(0), 7);
        e.run_until(100);
        assert!(e.process(ProcId(1)).received.is_empty(), "frozen while bad");
        e.run_until(300);
        assert_eq!(e.process(ProcId(1)).received, vec![(ProcId(0), 7)], "replayed on recovery");
        // The receipt must be timestamped at/after recovery.
        let t = e
            .trace()
            .events()
            .iter()
            .find(|ev| matches!(&ev.action, TraceEvent::App((p, 7)) if *p == ProcId(0)))
            .map(|ev| ev.time);
        // First emit is p0's own receipt (self-send) before the crash of p1;
        // find p1's by scanning all.
        let times: Vec<Time> = e
            .trace()
            .events()
            .iter()
            .filter(|ev| matches!(&ev.action, TraceEvent::App(_)))
            .map(|ev| ev.time)
            .collect();
        assert!(t.is_some());
        assert!(times.iter().any(|&t| t >= 200), "p1's receipt happens after recovery");
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let run = |seed| {
            let mut e = engine(seed);
            e.schedule_input(1, ProcId(0), 1);
            e.schedule_input(2, ProcId(1), 2);
            e.run_until(1000);
            format!("{:?}", e.trace())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn failure_events_appear_in_trace() {
        let mut e = engine(1);
        let mut script = FailureScript::new();
        script.crash(5, ProcId(2));
        e.load_failures(&script);
        e.run_until(10);
        assert!(e.trace().events().iter().any(|ev| matches!(
            ev.action,
            TraceEvent::Fail { subject: Subject::Loc(p), status: Status::Bad } if p == ProcId(2)
        )));
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        struct T {
            id: ProcId,
            fired: Vec<Time>,
        }
        impl Process for T {
            type Msg = ();
            type Input = ();
            type Event = ();
            fn id(&self) -> ProcId {
                self.id
            }
            fn on_start(&mut self, ctx: &mut Context<'_, (), ()>) {
                ctx.set_timer(10, 1);
                ctx.set_timer(25, 2);
            }
            fn on_message(&mut self, _: ProcId, _: (), _: &mut Context<'_, (), ()>) {}
            fn on_timer(&mut self, _k: u64, ctx: &mut Context<'_, (), ()>) {
                self.fired.push(ctx.now());
            }
            fn on_input(&mut self, _: (), _: &mut Context<'_, (), ()>) {}
        }
        let mut e = Engine::new(vec![T { id: ProcId(0), fired: vec![] }], NetConfig::default(), 0);
        e.run_until(100);
        assert_eq!(e.process(ProcId(0)).fired, vec![10, 25]);
    }

    #[test]
    fn per_link_delay_overrides_apply() {
        // Slow WAN hop p0→p1 (delay exactly 40); LAN default elsewhere.
        let mut e = engine(2);
        e.set_link_delay(ProcId(0), ProcId(1), 40, 40);
        e.schedule_input(10, ProcId(0), 7);
        e.run_until(1_000);
        let t_p1 = e
            .trace()
            .events()
            .iter()
            .find(|ev| {
                matches!(&ev.action, TraceEvent::App((p, 7)) if *p == ProcId(0)) && ev.time >= 50
            })
            .map(|ev| ev.time);
        // p1's receipt must be at exactly 10 + 40; p2's much earlier.
        let times: Vec<Time> = e
            .trace()
            .events()
            .iter()
            .filter(|ev| matches!(&ev.action, TraceEvent::App(_)))
            .map(|ev| ev.time)
            .collect();
        assert!(times.contains(&50), "WAN hop receipt at t=50: {times:?}");
        assert!(times.iter().any(|&t| t < 20), "LAN receipts stay fast: {times:?}");
        let _ = t_p1;
    }

    #[test]
    fn link_delay_table_dense_and_sparse_agree() {
        let default = (1, 5);
        let mut dense = LinkDelays::new([ProcId(0), ProcId(2)].iter(), default);
        let mut sparse = LinkDelays::new([ProcId(0), ProcId(100_000)].iter(), default);
        assert!(matches!(dense, LinkDelays::Dense { .. }));
        assert!(matches!(sparse, LinkDelays::Sparse { .. }));
        for ld in [&mut dense, &mut sparse] {
            ld.set(ProcId(0), ProcId(2), (7, 9));
            assert_eq!(ld.get(ProcId(0), ProcId(2)), (7, 9), "override read back");
            assert_eq!(ld.get(ProcId(2), ProcId(0)), default, "other direction untouched");
        }
    }

    #[test]
    fn ugly_channel_eventually_delivers_or_drops() {
        let mut e = engine(3);
        let mut script = FailureScript::new();
        script.set_pair(0, ProcId(0), ProcId(1), Status::Ugly);
        e.load_failures(&script);
        for i in 0..50 {
            e.schedule_input(10 + i, ProcId(0), i);
        }
        e.run_until(5000);
        let got = e.process(ProcId(1)).received.len();
        assert!(got > 0 && got < 50, "ugly channel should drop some, deliver some (got {got})");
    }
}
