//! `gcs-shard`: one keyspace hash-partitioned across several independent
//! VS/TO group instances.
//!
//! The paper's service manages membership and ordering *within* one
//! group. Scaling a replicated data service beyond one ring is an
//! application of that service, not a change to it: this crate runs `G`
//! unchanged protocol instances side by side and splits the keyspace
//! among them, so a partition or crash disturbs only the groups whose
//! member sets it touches while the rest keep serving. Nothing in
//! `gcs-core`/`gcs-vsimpl` knows sharding exists — each group instance
//! is a complete, separately-checkable VS/TO deployment.
//!
//! The pieces:
//!
//! - [`map`] — [`ShardMap`]: key → owning group (static FNV-1a hash
//!   partition) and group → current member set (refreshed from pushed
//!   view-change notifications, version-stamped so staleness is
//!   observable).
//! - [`router`] — [`RouterCore`]: the client-side routing policy
//!   (preferred member per group, down-set, cyclic retry on stale maps,
//!   redirect on view change) as a pure state machine.
//! - [`node`] — [`ShardNode`]: several [`gcs_net::NodeCore`] group
//!   instances behind **one** TCP transport, demultiplexed by the group
//!   tag in the wire codec.
//! - [`cluster`] — [`ShardCluster`]: the loopback harness booting `n`
//!   nodes hosting overlapping groups, with per-group observability and
//!   group-aware fault injection.
//! - [`load`] — [`run_shard_load`]: a keyed open/closed-loop load
//!   generator submitting KV commands (`gcs_apps::KvCmd`) to their
//!   owning group over the tagged client protocol.
//!
//! The `gcs-shard-bench` binary drives a 5-node, 4-group loopback
//! deployment through load and a one-group partition/merge, gates on
//! aggregate throughput, and feeds every group's trace through the VS/TO
//! checkers, the b/d monitors, and the per-key linearizability checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod load;
pub mod map;
pub mod node;
pub mod router;

pub use cluster::{ShardCluster, ShardClusterConfig};
pub use load::{run_shard_load, ShardLoadConfig};
pub use map::ShardMap;
pub use node::ShardNode;
pub use router::RouterCore;
