//! A sharded node: several independent [`NodeCore`] group instances
//! behind **one** TCP transport endpoint.
//!
//! Each hosted group runs the unchanged protocol event loop
//! ([`gcs_net::run_core_loop`]) on its own thread, wired to the shared
//! [`TcpTransport`] through a [`GroupEndpoint`] that tags outbound
//! frames with the group id and through the transport's group route
//! table for inbound ones. Peers therefore keep a single TCP connection
//! per node pair no matter how many groups the two nodes co-host; the
//! group tag in the wire codec (`PeerGroup`/`SubmitGroup`/
//! `DeliverGroup`) demultiplexes on arrival.

use gcs_model::{ProcId, Value, View};
use gcs_net::runtime::{run_core_loop, Clock, NodeCore, Recorded};
use gcs_net::transport::{GroupEndpoint, Incoming, ShutdownReport, TcpTransport, TransportConfig};
use gcs_obs::Obs;
use gcs_vsimpl::ProtoConfig;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One hosted group instance: its event channel, its protocol thread,
/// and shared handles onto what it has recorded so far.
struct GroupRuntime {
    events_tx: Sender<Incoming>,
    handle: Option<JoinHandle<NodeCore>>,
    recorded: Arc<Mutex<Vec<Recorded>>>,
    delivered: Arc<Mutex<Vec<(ProcId, Value)>>>,
    views: Arc<Mutex<Vec<View>>>,
}

/// A running sharded node: one transport, several group instances.
pub struct ShardNode {
    id: ProcId,
    transport: Arc<TcpTransport>,
    groups: BTreeMap<u32, GroupRuntime>,
    /// Keeps the group-0 route receiver alive when this node does not
    /// host group 0 (the transport pre-registers group 0 at start;
    /// dropping the receiver would turn misrouted frames into reader
    /// disconnects instead of harmless drops).
    _park_rx: Option<Receiver<Incoming>>,
}

impl ShardNode {
    /// Boots node `id` hosting the given groups (group id → that
    /// group's protocol configuration and observability sink). The
    /// transport records into `net_obs`; each group's core records into
    /// its own `Obs` so the b/d monitors see per-group event streams,
    /// not an interleaving of independent rings.
    pub fn start(
        id: ProcId,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        transport_cfg: TransportConfig,
        clock: Arc<Clock>,
        net_obs: Obs,
        groups: &BTreeMap<u32, (ProtoConfig, Obs)>,
    ) -> io::Result<ShardNode> {
        let (tx0, rx0) = mpsc::channel::<Incoming>();
        let transport =
            TcpTransport::start_with_obs(id, listener, peers, transport_cfg, tx0.clone(), net_obs)?;

        let mut rx0 = Some(rx0);
        let mut runtimes = BTreeMap::new();
        for (&g, (proto, obs)) in groups {
            let core = NodeCore::new_in_group(id, proto.clone(), clock.clone(), obs, Some(g));
            let (events_tx, events_rx) = if g == 0 {
                // Group 0 rides the route the transport pre-registered
                // at start; local submissions reuse the same channel.
                let rx = rx0.take().expect("group ids are unique");
                (tx0.clone(), rx)
            } else {
                let (tx, rx) = mpsc::channel::<Incoming>();
                transport.register_group(g, tx.clone());
                (tx, rx)
            };
            let recorded = core.recorded_handle();
            let delivered = core.delivered_handle();
            let views = core.views_handle();
            let endpoint = GroupEndpoint::new(g, transport.clone());
            let clock = clock.clone();
            let handle =
                std::thread::spawn(move || run_core_loop(core, events_rx, &endpoint, &clock));
            runtimes.insert(
                g,
                GroupRuntime { events_tx, handle: Some(handle), recorded, delivered, views },
            );
        }

        Ok(ShardNode { id, transport, groups: runtimes, _park_rx: rx0 })
    }

    /// This node's identifier.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The group ids this node hosts.
    pub fn hosted_groups(&self) -> Vec<u32> {
        self.groups.keys().copied().collect()
    }

    /// The shared transport endpoint (for severing links, counters).
    pub fn transport(&self) -> &Arc<TcpTransport> {
        &self.transport
    }

    /// Submits a client value into the hosted group `g` through its
    /// local event path. Returns whether the group is hosted here.
    pub fn submit(&self, g: u32, a: Value) -> bool {
        match self.groups.get(&g) {
            Some(rt) => rt.events_tx.send(Incoming::Submit { batch: vec![a] }).is_ok(),
            None => false,
        }
    }

    /// What the hosted group `g` has delivered to its client so far.
    pub fn delivered(&self, g: u32) -> Vec<(ProcId, Value)> {
        self.groups.get(&g).map_or_else(Vec::new, |rt| lock_clean(&rt.delivered).clone())
    }

    /// How many values group `g` has delivered (cheap, for polling).
    pub fn delivered_count(&self, g: u32) -> usize {
        self.groups.get(&g).map_or(0, |rt| lock_clean(&rt.delivered).len())
    }

    /// Every view the hosted group `g` has installed, in order.
    pub fn views(&self, g: u32) -> Vec<View> {
        self.groups.get(&g).map_or_else(Vec::new, |rt| lock_clean(&rt.views).clone())
    }

    /// A snapshot of group `g`'s recorded (stamped) trace events.
    pub fn recorded(&self, g: u32) -> Vec<Recorded> {
        self.groups.get(&g).map_or_else(Vec::new, |rt| lock_clean(&rt.recorded).clone())
    }

    /// Stops every group loop and the transport; returns the final
    /// per-group recordings and the aggregated shutdown report.
    pub fn stop(mut self) -> (BTreeMap<u32, Vec<Recorded>>, ShutdownReport) {
        for rt in self.groups.values() {
            let _ = rt.events_tx.send(Incoming::Stop);
        }
        let mut recordings = BTreeMap::new();
        for (&g, rt) in self.groups.iter_mut() {
            if let Some(h) = rt.handle.take() {
                let _ = h.join();
            }
            recordings.insert(g, lock_clean(&rt.recorded).clone());
        }
        let report = self.transport.stop();
        (recordings, report)
    }
}
