//! The sharded loopback cluster harness: `n` nodes on ephemeral
//! localhost ports, each hosting every group whose member set contains
//! it, with per-group observability sinks and group-aware fault
//! injection.
//!
//! The per-group [`Obs`] split matters: the b/d monitors assume they are
//! watching *one* group's event stream (one ring, one membership), so a
//! node hosting three groups records each core's events into that
//! group's sink. The transport's frame counters go to a separate
//! network sink. Fault injection writes the corresponding `Fault` trace
//! event into the sink of every group the fault can disturb — a severed
//! (p, q) pair disturbs exactly the groups containing both endpoints,
//! a crash of p disturbs every group containing p — which is what lets
//! the stabilization monitor excuse the disturbed interval per group,
//! exactly as Theorem 8.1's premise does.

use crate::ShardMap;
use gcs_ioa::TimedTrace;
use gcs_model::{ProcId, Time, Value, View};
use gcs_net::runtime::{merge_recordings, Clock, Recorded};
use gcs_net::transport::{ShutdownReport, TransportConfig};
use gcs_netsim::TraceEvent;
use gcs_obs::{EventKind, FaultKind, Obs};
use gcs_vsimpl::{DetectorPolicy, ImplEvent, MembershipMode, ProtoConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use crate::node::ShardNode;

/// Sharded cluster parameters.
#[derive(Clone, Debug)]
pub struct ShardClusterConfig {
    /// Number of physical nodes.
    pub n: u32,
    /// Member sets per group (group id = index). Groups may overlap.
    pub groups: Vec<BTreeSet<ProcId>>,
    /// The protocol δ in milliseconds (per group: π = 2kδ, μ = 4kδ for
    /// a k-member group).
    pub delta_ms: Time,
    /// Transport knobs.
    pub transport: TransportConfig,
}

impl ShardClusterConfig {
    /// The ring topology the benchmark uses: `g` groups of
    /// `members_per_group` consecutive nodes, `group i = {i, i+1, …}
    /// mod n`. With `n = 5, g = 4, k = 3` this makes node 2 host three
    /// groups and lets a single group be partitioned by severing two
    /// link pairs.
    pub fn ring(n: u32, g: u32, members_per_group: u32, delta_ms: Time) -> ShardClusterConfig {
        let groups = (0..g)
            .map(|i| (0..members_per_group.min(n)).map(|j| ProcId((i + j) % n)).collect())
            .collect();
        ShardClusterConfig { n, groups, delta_ms, transport: TransportConfig::default() }
    }

    /// The initial shard map this configuration denotes.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.groups.clone())
    }

    /// The per-group protocol configuration: the group's member set is
    /// both the ambient set and P₀, with the standard timer scaling.
    pub fn proto(&self, g: usize) -> ProtoConfig {
        let members = &self.groups[g];
        let k = members.len() as Time;
        ProtoConfig {
            procs: members.clone(),
            p0: members.clone(),
            delta: self.delta_ms,
            pi: 2 * k * self.delta_ms,
            mu: 4 * k * self.delta_ms,
            mode: MembershipMode::ThreeRound,
            safe_delivery: false,
            pipeline: 4,
            detector: DetectorPolicy::Fixed,
        }
    }
}

/// A running sharded loopback cluster.
pub struct ShardCluster {
    nodes: Vec<Option<ShardNode>>,
    /// Recordings of stopped (crashed) nodes, per node per group.
    past: Vec<BTreeMap<u32, Vec<Recorded>>>,
    /// Deliveries and views of stopped nodes, per node per group.
    past_delivered: Vec<BTreeMap<u32, Vec<(ProcId, Value)>>>,
    addrs: BTreeMap<ProcId, SocketAddr>,
    group_obs: Vec<Obs>,
    net_obs: Obs,
    config: ShardClusterConfig,
}

impl ShardCluster {
    /// Binds `n` ephemeral listeners and boots every node with the
    /// groups it belongs to. Each group gets a fresh [`Obs`] with the
    /// given trace capacity; the transports share one network sink.
    pub fn start(config: ShardClusterConfig, trace_capacity: usize) -> io::Result<ShardCluster> {
        let n = config.n;
        let mut listeners = Vec::new();
        let mut addrs = BTreeMap::new();
        for i in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(ProcId(i), l.local_addr()?);
            listeners.push(l);
        }
        let clock = Clock::new();
        let group_obs: Vec<Obs> =
            (0..config.groups.len()).map(|_| Obs::with_trace_capacity(trace_capacity)).collect();
        let net_obs = Obs::new();

        let mut nodes = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let id = ProcId(i as u32);
            let hosted: BTreeMap<u32, (ProtoConfig, Obs)> = config
                .groups
                .iter()
                .enumerate()
                .filter(|(_, members)| members.contains(&id))
                .map(|(g, _)| (g as u32, (config.proto(g), group_obs[g].clone())))
                .collect();
            let node = ShardNode::start(
                id,
                listener,
                &addrs,
                config.transport.clone(),
                clock.clone(),
                net_obs.clone(),
                &hosted,
            )?;
            nodes.push(Some(node));
        }
        let past = (0..n as usize).map(|_| BTreeMap::new()).collect();
        let past_delivered = (0..n as usize).map(|_| BTreeMap::new()).collect();
        Ok(ShardCluster { nodes, past, past_delivered, addrs, group_obs, net_obs, config })
    }

    /// The configuration this cluster was started with.
    pub fn config(&self) -> &ShardClusterConfig {
        &self.config
    }

    /// The observability sink of group `g`.
    pub fn group_obs(&self, g: u32) -> &Obs {
        &self.group_obs[g as usize]
    }

    /// The shared network (transport) observability sink.
    pub fn net_obs(&self) -> &Obs {
        &self.net_obs
    }

    /// The bound address of node `p` (for external TCP clients).
    pub fn addr(&self, p: ProcId) -> SocketAddr {
        self.addrs[&p]
    }

    /// The group ids whose member sets contain `p`.
    pub fn groups_of(&self, p: ProcId) -> Vec<u32> {
        self.config
            .groups
            .iter()
            .enumerate()
            .filter(|(_, m)| m.contains(&p))
            .map(|(g, _)| g as u32)
            .collect()
    }

    fn node(&self, p: ProcId) -> &ShardNode {
        self.nodes[p.index()].as_ref().expect("node is crashed")
    }

    /// Whether node `p` is currently running.
    pub fn is_up(&self, p: ProcId) -> bool {
        self.nodes[p.index()].is_some()
    }

    /// Submits a value into group `g` at member `p`.
    pub fn submit(&self, g: u32, p: ProcId, a: Value) -> bool {
        self.node(p).submit(g, a)
    }

    /// Per-member delivered streams of group `g` (live nodes only,
    /// keyed by member id; crashed members report their final stream).
    pub fn delivered(&self, g: u32) -> BTreeMap<ProcId, Vec<(ProcId, Value)>> {
        let mut out = BTreeMap::new();
        for p in &self.config.groups[g as usize] {
            match &self.nodes[p.index()] {
                Some(node) => {
                    out.insert(*p, node.delivered(g));
                }
                None => {
                    if let Some(d) = self.past_delivered[p.index()].get(&g) {
                        out.insert(*p, d.clone());
                    }
                }
            }
        }
        out
    }

    /// Per-member installed-view histories of group `g` (live members).
    pub fn views(&self, g: u32) -> BTreeMap<ProcId, Vec<View>> {
        self.config.groups[g as usize]
            .iter()
            .filter(|p| self.is_up(**p))
            .map(|p| (*p, self.node(*p).views(g)))
            .collect()
    }

    /// Blocks until every live member of group `g` has delivered at
    /// least `count` values, or the deadline passes.
    pub fn await_group_deliveries(&self, g: u32, count: usize, deadline: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            let ok = self.config.groups[g as usize]
                .iter()
                .filter(|p| self.is_up(**p))
                .all(|p| self.node(*p).delivered_count(g) >= count);
            if ok {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Records a fault event into the sink of every group in `groups`.
    fn record_fault(&self, groups: &[u32], node: u32, peer: u32, kind: FaultKind) {
        for &g in groups {
            self.group_obs[g as usize].trace.record(EventKind::Fault { node, peer, kind });
        }
    }

    /// Severs the (p, q) link pair in both directions. The fault is
    /// recorded into every group containing *both* endpoints — those
    /// are exactly the groups whose communication the cut can disturb.
    pub fn sever_pair(&self, p: ProcId, q: ProcId) {
        self.node(p).transport().sever(q);
        self.node(q).transport().sever(p);
        let disturbed: Vec<u32> =
            self.groups_of(p).into_iter().filter(|g| self.groups_of(q).contains(g)).collect();
        self.record_fault(&disturbed, p.0, q.0, FaultKind::Sever);
    }

    /// Heals the (p, q) link pair.
    pub fn heal_pair(&self, p: ProcId, q: ProcId) {
        self.node(p).transport().heal(q);
        self.node(q).transport().heal(p);
        let disturbed: Vec<u32> =
            self.groups_of(p).into_iter().filter(|g| self.groups_of(q).contains(g)).collect();
        self.record_fault(&disturbed, p.0, q.0, FaultKind::Heal);
    }

    /// Stops node `p` abruptly (no restart in this harness — the
    /// deterministic simulator covers crash/recovery). Every group the
    /// node hosts records the crash as a fault; the node's recordings
    /// are kept for the final merged traces.
    pub fn crash(&mut self, p: ProcId) {
        let node = self.nodes[p.index()].take().expect("node already crashed");
        let hosted = node.hosted_groups();
        self.record_fault(&hosted, p.0, p.0, FaultKind::Crash);
        for &g in &hosted {
            self.past_delivered[p.index()].insert(g, node.delivered(g));
        }
        let (recordings, _) = node.stop();
        self.past[p.index()] = recordings;
    }

    /// The merged recorded trace of group `g` across its members (and
    /// any crashed member's final recording).
    pub fn merged_trace(&self, g: u32) -> TimedTrace<TraceEvent<ImplEvent>> {
        let per_member: Vec<Vec<Recorded>> = self.config.groups[g as usize]
            .iter()
            .map(|p| match &self.nodes[p.index()] {
                Some(node) => node.recorded(g),
                None => self.past[p.index()].get(&g).cloned().unwrap_or_default(),
            })
            .collect();
        merge_recordings(&per_member)
    }

    /// Stops every node; returns the merged per-group traces and the
    /// aggregated shutdown report.
    pub fn stop(mut self) -> (BTreeMap<u32, TimedTrace<TraceEvent<ImplEvent>>>, ShutdownReport) {
        let mut report = ShutdownReport::default();
        // Collect final recordings into `past`, then merge per group.
        for i in 0..self.nodes.len() {
            if let Some(node) = self.nodes[i].take() {
                let (recordings, r) = node.stop();
                report.absorb(r);
                self.past[i] = recordings;
            }
        }
        let mut traces = BTreeMap::new();
        for g in 0..self.config.groups.len() {
            let per_member: Vec<Vec<Recorded>> = self.config.groups[g]
                .iter()
                .map(|p| self.past[p.index()].get(&(g as u32)).cloned().unwrap_or_default())
                .collect();
            traces.insert(g as u32, merge_recordings(&per_member));
        }
        (traces, report)
    }
}
