//! The client-side shard router: key → group → a live member to talk
//! to, with retry across members on failure and redirect on view
//! change.
//!
//! [`RouterCore`] is deliberately transport-agnostic — it is a pure
//! policy state machine (cached [`ShardMap`], a preferred member per
//! group, a down-set) so its retry/redirect/failover behavior is unit
//! testable without sockets. The TCP client drives it with three
//! signals: a pushed `View` frame feeds [`RouterCore::on_view`], a
//! connection failure feeds [`RouterCore::mark_down`], and a submit that
//! timed out against a stale map feeds [`RouterCore::retry_next`] to
//! rotate to the next member of the same group.

use crate::map::ShardMap;
use gcs_model::{ProcId, View};
use std::collections::{BTreeMap, BTreeSet};

/// The routing decision state (see the module docs).
#[derive(Clone, Debug)]
pub struct RouterCore {
    map: ShardMap,
    /// The member each group's traffic currently targets.
    preferred: BTreeMap<u32, ProcId>,
    /// Members believed dead (connection refused/lost). A member leaves
    /// the set when a fresh view shows it alive again.
    down: BTreeSet<ProcId>,
}

impl RouterCore {
    /// A router over an initial shard map (e.g. the static deployment
    /// configuration; view pushes refine it from there).
    pub fn new(map: ShardMap) -> RouterCore {
        RouterCore { map, preferred: BTreeMap::new(), down: BTreeSet::new() }
    }

    /// The cached shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Routes `key`: the owning group and the member to send to.
    /// Returns `None` only when every member of the group is marked
    /// down.
    pub fn target(&mut self, key: &str) -> Option<(u32, ProcId)> {
        let group = self.map.key_group(key);
        Some((group, self.member_for(group)?))
    }

    /// The member currently targeted for `group` (choosing and caching
    /// one if needed).
    pub fn member_for(&mut self, group: u32) -> Option<ProcId> {
        if let Some(&p) = self.preferred.get(&group) {
            if self.map.members(group).contains(&p) && !self.down.contains(&p) {
                return Some(p);
            }
        }
        let pick = self.map.members(group).iter().find(|p| !self.down.contains(p)).copied()?;
        self.preferred.insert(group, pick);
        Some(pick)
    }

    /// Folds a pushed view-change notification for `group`. Members of
    /// the new view are evidently alive, so they leave the down-set; if
    /// the group's preferred member fell out of the view, the next
    /// [`RouterCore::target`] call redirects to a current member.
    pub fn on_view(&mut self, group: u32, view: &View) {
        self.map.apply_view(group, view);
        for p in &view.set {
            self.down.remove(p);
        }
        if let Some(&p) = self.preferred.get(&group) {
            if !view.set.contains(&p) {
                self.preferred.remove(&group);
            }
        }
    }

    /// Marks a member dead (connection refused or lost): every group
    /// preferring it redirects on its next routing decision.
    pub fn mark_down(&mut self, node: ProcId) {
        self.down.insert(node);
        self.preferred.retain(|_, p| *p != node);
    }

    /// Stale-map retry: the current target for `group` did not answer
    /// (e.g. it is on the minority side of a partition the cached map
    /// does not know about yet). Rotates to the next member of the
    /// group in cyclic order, skipping down members, and returns it.
    pub fn retry_next(&mut self, group: u32) -> Option<ProcId> {
        let members: Vec<ProcId> = self.map.members(group).iter().copied().collect();
        if members.is_empty() {
            return None;
        }
        let cur = self.preferred.get(&group).copied();
        let start = cur.and_then(|c| members.iter().position(|&p| p == c)).map_or(0, |i| i + 1);
        for off in 0..members.len() {
            let p = members[(start + off) % members.len()];
            if Some(p) != cur && !self.down.contains(&p) {
                self.preferred.insert(group, p);
                return Some(p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::ViewId;

    fn procs(ids: &[u32]) -> BTreeSet<ProcId> {
        ids.iter().map(|&i| ProcId(i)).collect()
    }

    fn router() -> RouterCore {
        // Ring membership over 5 nodes, 4 groups of 3 — the benchmark
        // topology.
        let groups = (0..4u32).map(|i| procs(&[i, (i + 1) % 5, (i + 2) % 5])).collect();
        RouterCore::new(ShardMap::new(groups))
    }

    #[test]
    fn stale_map_retry_rotates_to_another_member() {
        let mut r = router();
        let (g, first) = r.target("alpha").expect("route");
        // The target does not answer (stale map: it is on the minority
        // side of a partition). Retry must pick a *different* member of
        // the same group, and stick to it for subsequent routes.
        let second = r.retry_next(g).expect("another member");
        assert_ne!(first, second);
        assert!(r.map().members(g).contains(&second));
        assert_eq!(r.target("alpha"), Some((g, second)));
        // Exhausting the rotation cycles through the remaining member.
        let third = r.retry_next(g).expect("third member");
        assert_ne!(third, second);
    }

    #[test]
    fn view_change_redirects_off_departed_members() {
        let mut r = router();
        let (g, first) = r.target("alpha").expect("route");
        // A view excluding the preferred member arrives (it was
        // partitioned away): routing must redirect to a view member.
        let survivors: BTreeSet<ProcId> =
            r.map().members(g).iter().copied().filter(|&p| p != first).collect();
        let v = View::new(ViewId::new(7, *survivors.iter().next().unwrap()), survivors.clone());
        r.on_view(g, &v);
        let (_, next) = r.target("alpha").expect("redirected route");
        assert_ne!(next, first);
        assert!(survivors.contains(&next));
        assert!(r.map().version() > 0, "the fold must bump the map version");
    }

    #[test]
    fn member_down_fails_over_and_view_revives() {
        let mut r = router();
        let (g, first) = r.target("alpha").expect("route");
        r.mark_down(first);
        let (_, next) = r.target("alpha").expect("failover route");
        assert_ne!(next, first);
        // Mark every member down: routing must refuse rather than aim
        // at a dead node.
        for p in r.map().members(g).clone() {
            r.mark_down(p);
        }
        assert_eq!(r.target("alpha"), None);
        // A fresh view listing the members revives them.
        let v = View::new(ViewId::new(9, first), r.map().members(g).clone());
        r.on_view(g, &v);
        assert!(r.target("alpha").is_some());
    }

    #[test]
    fn keys_route_to_their_owning_group_only() {
        let mut r = router();
        for key in ["a", "b", "c", "d", "e", "f"] {
            let (g, p) = r.target(key).expect("route");
            assert_eq!(g, r.map().key_group(key));
            assert!(r.map().members(g).contains(&p));
        }
    }
}
