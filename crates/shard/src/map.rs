//! The shard map: which group owns a key, and who is in each group.
//!
//! One keyspace is hash-partitioned across `G` independent VS/TO group
//! instances: a key belongs to group `fnv1a(key) mod G` for the life of
//! the deployment (groups are never split or merged — the paper's
//! dynamic-membership machinery operates *inside* each group). What does
//! change is each group's live member set: views installed by the group
//! members are pushed to subscribed clients as `View` frames, and the
//! router folds them into its cached map, bumping a version so staleness
//! is observable.

use gcs_model::{ProcId, View};
use std::collections::BTreeSet;

/// FNV-1a over the key bytes: deterministic, dependency-free, identical
/// on every platform — the same construction the simulator's run digest
/// uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A client-side snapshot of the sharded deployment: group → member
/// set, with a version that advances on every fold of a view change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    groups: Vec<BTreeSet<ProcId>>,
}

impl ShardMap {
    /// A map over the given per-group member sets (group id = index).
    pub fn new(groups: Vec<BTreeSet<ProcId>>) -> ShardMap {
        ShardMap { version: 0, groups }
    }

    /// How many groups partition the keyspace.
    pub fn group_count(&self) -> u32 {
        self.groups.len() as u32
    }

    /// The map version: 0 at construction, +1 per folded view change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The group owning `key`, for the life of the deployment.
    pub fn key_group(&self, key: &str) -> u32 {
        if self.groups.is_empty() {
            return 0;
        }
        (fnv1a(key.as_bytes()) % self.groups.len() as u64) as u32
    }

    /// The current member set of `group` (empty for unknown groups).
    pub fn members(&self, group: u32) -> &BTreeSet<ProcId> {
        static EMPTY: BTreeSet<ProcId> = BTreeSet::new();
        self.groups.get(group as usize).unwrap_or(&EMPTY)
    }

    /// Folds a view-change notification for `group` into the map.
    /// Returns whether anything changed (the version advances iff so).
    pub fn apply_view(&mut self, group: u32, view: &View) -> bool {
        let Some(members) = self.groups.get_mut(group as usize) else {
            return false;
        };
        if *members == view.set {
            return false;
        }
        *members = view.set.clone();
        self.version += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::{View, ViewId};

    fn map3() -> ShardMap {
        ShardMap::new(vec![
            [ProcId(0), ProcId(1)].into_iter().collect(),
            [ProcId(1), ProcId(2)].into_iter().collect(),
            [ProcId(2), ProcId(0)].into_iter().collect(),
        ])
    }

    #[test]
    fn key_group_is_stable_and_in_range() {
        let m = map3();
        for key in ["a", "b", "account/7", "k013", ""] {
            let g = m.key_group(key);
            assert!(g < m.group_count());
            assert_eq!(g, m.key_group(key), "same key, same group");
        }
    }

    #[test]
    fn keys_spread_over_all_groups() {
        let m = map3();
        let hit: BTreeSet<u32> = (0..64).map(|i| m.key_group(&format!("k{i:03}"))).collect();
        assert_eq!(hit.len() as u32, m.group_count(), "64 keys must hit every group");
    }

    #[test]
    fn apply_view_updates_members_and_version() {
        let mut m = map3();
        let v = View::new(ViewId::new(3, ProcId(1)), [ProcId(1)].into_iter().collect());
        assert!(m.apply_view(1, &v));
        assert_eq!(m.version(), 1);
        assert_eq!(m.members(1).len(), 1);
        // Folding the same membership again is a no-op.
        assert!(!m.apply_view(1, &v));
        assert_eq!(m.version(), 1);
        // Unknown groups are ignored.
        assert!(!m.apply_view(9, &v));
    }
}
