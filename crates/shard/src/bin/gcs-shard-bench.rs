//! `gcs-shard-bench`: the multi-group throughput benchmark for a
//! hash-sharded keyspace over independent VS/TO group instances.
//!
//! ```text
//! gcs-shard-bench [--nodes 5] [--groups 4] [--members 3] [--ops 8000]
//!                 [--window 128] [--warmup 1000] [--keys 64]
//!                 [--delta-ms 20] [--out BENCH_shard.json]
//!                 [--floor <ops/s>] [--no-check] [--no-partition]
//! ```
//!
//! Boots `nodes` loopback nodes hosting `groups` overlapping ring
//! groups of `members` consecutive nodes each, drives one keyed
//! closed-loop KV load generator per group concurrently, and reports the
//! **aggregate** operations per second across all groups — the number
//! the `--floor` CI gate compares. Then (unless `--no-partition`) it
//! partitions exactly one group — severing the `(0,1)` and `(0,2)` link
//! pairs splits group 0 into `{0} | {1,2}` while every other group's
//! membership stays connected — drives more keyed load into group 0's
//! majority side and into an undisturbed group, heals, and waits for
//! group 0 to re-form its full view and converge.
//!
//! Verification is per group, because each group is a complete VS/TO
//! deployment: the b/d bound monitors run over each group's own event
//! stream, the VS cause and TO checkers over each group's merged
//! recorded trace, and the per-key linearizability checker over each
//! group's per-member delivered KV command streams. A fast run that
//! breaks any of them exits nonzero — it is a bug, not a result.

use gcs_apps::check_per_key_linearizable;
use gcs_core::cause::check_trace;
use gcs_core::to_trace::check_to_trace;
use gcs_model::{ProcId, Value};
use gcs_net::{LoadMode, LoadReport};
use gcs_obs::{BoundParams, StabilizationMonitor, TokenRoundMonitor};
use gcs_shard::{run_shard_load, ShardCluster, ShardClusterConfig, ShardLoadConfig};
use gcs_vsimpl::convert::{to_obs, vs_actions};
use std::process::exit;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: gcs-shard-bench [--nodes <n>] [--groups <g>] [--members <k>] [--ops <n>]\n\
         \n\
         --nodes      cluster size (default 5)\n\
         --groups     group instances sharding the keyspace (default 4)\n\
         --members    members per group, consecutive ring slices (default 3)\n\
         --ops        timed operations per group (default 8000)\n\
         --window     closed-loop outstanding window per group (default 128)\n\
         --warmup     untimed warm-up operations per group (default 1000)\n\
         --keys       keyspace size for the generated KV commands (default 64)\n\
         --delta-ms   protocol delta in ms (default 20)\n\
         --out        JSON result path (default BENCH_shard.json)\n\
         --floor      minimum acceptable aggregate ops/s; below it exit nonzero\n\
         --no-check   skip the trace checkers and bound monitors\n\
         --no-partition  skip the one-group partition/merge phase"
    );
    exit(2)
}

struct Args {
    nodes: u32,
    groups: u32,
    members: u32,
    ops: u64,
    window: usize,
    warmup: u64,
    keys: u64,
    delta_ms: u64,
    out: String,
    floor: Option<f64>,
    check: bool,
    partition: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        nodes: 5,
        groups: 4,
        members: 3,
        ops: 8_000,
        window: 128,
        warmup: 1_000,
        keys: 64,
        delta_ms: 20,
        out: "BENCH_shard.json".to_string(),
        floor: None,
        check: true,
        partition: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("gcs-shard-bench: {what} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--nodes" => a.nodes = take("--nodes").parse().unwrap_or_else(|_| usage()),
            "--groups" => a.groups = take("--groups").parse().unwrap_or_else(|_| usage()),
            "--members" => a.members = take("--members").parse().unwrap_or_else(|_| usage()),
            "--ops" => a.ops = take("--ops").parse().unwrap_or_else(|_| usage()),
            "--window" => a.window = take("--window").parse().unwrap_or_else(|_| usage()),
            "--warmup" => a.warmup = take("--warmup").parse().unwrap_or_else(|_| usage()),
            "--keys" => a.keys = take("--keys").parse().unwrap_or_else(|_| usage()),
            "--delta-ms" => a.delta_ms = take("--delta-ms").parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = take("--out"),
            "--floor" => a.floor = Some(take("--floor").parse().unwrap_or_else(|_| usage())),
            "--no-check" => a.check = false,
            "--no-partition" => a.partition = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("gcs-shard-bench: unknown argument {other:?}");
                usage();
            }
        }
    }
    if a.nodes == 0 || a.groups == 0 || a.members == 0 || a.ops == 0 {
        usage();
    }
    if a.members > a.nodes {
        eprintln!("gcs-shard-bench: --members cannot exceed --nodes");
        usage();
    }
    a
}

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Whether every live member of group `g` has installed a view of
/// exactly `size` members.
fn group_view_size(cluster: &ShardCluster, g: u32, size: usize) -> bool {
    let views = cluster.views(g);
    !views.is_empty() && views.values().all(|vs| vs.last().is_some_and(|v| v.size() == size))
}

/// The entry member keyed load for group `g` targets: the group's first
/// member during the main phase.
fn entry(cluster: &ShardCluster, g: u32) -> ProcId {
    *cluster
        .config()
        .groups
        .get(g as usize)
        .and_then(|m| m.iter().next())
        .expect("group exists and is nonempty")
}

fn load_cfg(a: &Args, g: u32, ops: u64, warmup: u64, seed_base: u64) -> ShardLoadConfig {
    ShardLoadConfig {
        group: g,
        ops,
        keys: a.keys,
        seed_base,
        mode: LoadMode::Closed { window: a.window },
        idle_timeout: Duration::from_secs(30),
        warmup,
    }
}

/// Runs one keyed generator per group concurrently; returns the
/// per-group reports in group order (exiting on any I/O failure).
fn run_wave(
    cluster: &ShardCluster,
    jobs: Vec<(u32, ProcId, ShardLoadConfig)>,
) -> Vec<(u32, LoadReport)> {
    let map = cluster.config().shard_map();
    let mut out = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (g, at, cfg) in &jobs {
            let addr = cluster.addr(*at);
            let map = map.clone();
            let g = *g;
            let cfg = cfg.clone();
            handles.push((g, s.spawn(move || run_shard_load(addr, &map, &cfg))));
        }
        for (g, h) in handles {
            match h.join() {
                Ok(Ok(r)) => out.push((g, r)),
                Ok(Err(e)) => {
                    eprintln!("gcs-shard-bench: load run for group {g} failed: {e}");
                    exit(1);
                }
                Err(_) => {
                    eprintln!("gcs-shard-bench: load thread for group {g} panicked");
                    exit(1);
                }
            }
        }
    });
    out.sort_by_key(|(g, _)| *g);
    out
}

fn json_result(
    a: &Args,
    reports: &[(u32, LoadReport)],
    aggregate: f64,
    partition: Option<(u64, u64)>,
    checks: &[(String, bool)],
) -> String {
    let per_group: Vec<String> = reports
        .iter()
        .map(|(g, r)| {
            let h = &r.latency_us;
            format!(
                "{{ \"group\": {g}, \"submitted\": {}, \"delivered\": {}, \"elapsed_ms\": {}, \"ops_per_sec\": {:.1}, \"latency_us\": {{ \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }} }}",
                r.submitted,
                r.delivered,
                r.elapsed.as_millis(),
                r.throughput_ops(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max(),
            )
        })
        .collect();
    let partition_json = match partition {
        Some((submitted, delivered)) => {
            format!("{{ \"ran\": true, \"submitted\": {submitted}, \"delivered\": {delivered} }}")
        }
        None => "{ \"ran\": false }".to_string(),
    };
    let checks: Vec<String> =
        checks.iter().map(|(name, passed)| format!("\"{name}\": {passed}")).collect();
    format!(
        "{{\n  \"schema\": \"gcs-shard-bench/v1\",\n  \"nodes\": {},\n  \"groups\": {},\n  \"members_per_group\": {},\n  \"mode\": \"closed\",\n  \"window\": {},\n  \"warmup_ops_per_group\": {},\n  \"ops_per_group\": {},\n  \"keys\": {},\n  \"aggregate_ops_per_sec\": {:.1},\n  \"per_group\": [\n    {}\n  ],\n  \"partition_phase\": {},\n  \"checks\": {{ {} }}\n}}\n",
        a.nodes,
        a.groups,
        a.members,
        a.window,
        a.warmup,
        a.ops,
        a.keys,
        aggregate,
        per_group.join(",\n    "),
        partition_json,
        checks.join(", "),
    )
}

fn main() {
    let a = parse_args();
    let config = ShardClusterConfig::ring(a.nodes, a.groups, a.members, a.delta_ms);
    // Trace capacity per group sized so a full run fits without
    // eviction — the monitors need each group's complete stream.
    let cluster = ShardCluster::start(config, 1 << 21).unwrap_or_else(|e| {
        eprintln!("gcs-shard-bench: bind failed: {e}");
        exit(1);
    });

    for g in 0..a.groups {
        let size = cluster.config().groups[g as usize].len();
        if !wait_for(Duration::from_secs(30), || group_view_size(&cluster, g, size)) {
            eprintln!("gcs-shard-bench: initial view for group {g} never formed");
            exit(1);
        }
    }

    // Phase 1: all groups loaded concurrently; the aggregate is the sum
    // of the per-group closed-loop throughputs.
    let jobs: Vec<(u32, ProcId, ShardLoadConfig)> = (0..a.groups)
        .map(|g| {
            let seed_base = u64::from(g + 1) * 100_000_000;
            (g, entry(&cluster, g), load_cfg(&a, g, a.ops, a.warmup, seed_base))
        })
        .collect();
    let reports = run_wave(&cluster, jobs);

    let mut failed = false;
    for (g, r) in &reports {
        if r.delivered < r.submitted {
            eprintln!(
                "gcs-shard-bench: FAIL: group {g}: {} of {} operations never delivered",
                r.submitted - r.delivered,
                r.submitted
            );
            failed = true;
        }
    }
    let aggregate: f64 = reports.iter().map(|(_, r)| r.throughput_ops()).sum();

    // Every member of every group must converge on the full op count
    // before fault injection (warmup + timed ops per group).
    let phase1_total = (a.warmup + a.ops) as usize;
    for g in 0..a.groups {
        if !cluster.await_group_deliveries(g, phase1_total, Duration::from_secs(30)) {
            let counts: Vec<String> =
                cluster.delivered(g).iter().map(|(p, s)| format!("{p:?}={}", s.len())).collect();
            eprintln!(
                "gcs-shard-bench: FAIL: group {g} members missed client traffic ({})",
                counts.join(", ")
            );
            failed = true;
        }
    }
    {
        let snap = cluster.net_obs().registry.snapshot();
        println!(
            "gcs-shard-bench: net: {} frames sent, {} dropped, {} rejected, {} reconnects",
            snap.counter_total("net_frames_sent_total"),
            snap.counter_total("net_frames_dropped_total"),
            snap.counter_total("net_frames_rejected_total"),
            snap.counter_total("net_reconnects_total"),
        );
    }

    // Phase 2: partition exactly group 0. With the ring topology,
    // severing (0,1) and (0,2) splits group 0 into {0} | {1,2} — a
    // majority side that keeps its primary — while every other group's
    // member set remains fully connected.
    let partition_possible = a.partition && a.nodes >= 5 && a.groups >= 2 && a.members == 3;
    let mut partition_stats: Option<(u64, u64)> = None;
    if a.partition && !partition_possible {
        eprintln!(
            "gcs-shard-bench: note: partition phase needs >= 5 nodes and 3-member groups; skipping"
        );
    }
    if partition_possible {
        let (p0, p1, p2) = (ProcId(0), ProcId(1), ProcId(2));
        cluster.sever_pair(p0, p1);
        cluster.sever_pair(p0, p2);
        // The majority side {1,2} must re-form as a 2-member view.
        let majority_view = |c: &ShardCluster| {
            c.views(0)
                .iter()
                .filter(|(p, _)| **p != p0)
                .all(|(_, vs)| vs.last().is_some_and(|v| v.size() == 2))
        };
        if !wait_for(Duration::from_secs(30), || majority_view(&cluster)) {
            eprintln!("gcs-shard-bench: FAIL: group 0 majority view never formed");
            failed = true;
        }

        // Keyed load into the partitioned group's majority side and into
        // an undisturbed group, concurrently: the cut must not stop
        // either from serving.
        let part_ops = (a.ops / 10).clamp(100, 1000);
        let other = a.groups - 1;
        let mut jobs = vec![(0u32, p1, load_cfg(&a, 0, part_ops, 0, 700_000_000))];
        jobs.push((other, entry(&cluster, other), load_cfg(&a, other, part_ops, 0, 800_000_000)));
        let wave = run_wave(&cluster, jobs);
        for (g, r) in &wave {
            if r.delivered < r.submitted {
                eprintln!(
                    "gcs-shard-bench: FAIL: group {g} under partition: {} of {} ops never delivered",
                    r.submitted - r.delivered,
                    r.submitted
                );
                failed = true;
            }
        }
        let psub: u64 = wave.iter().map(|(_, r)| r.submitted).sum();
        let pdel: u64 = wave.iter().map(|(_, r)| r.delivered).sum();
        partition_stats = Some((psub, pdel));

        // Merge: heal both cuts and require group 0's full view back at
        // every member, then convergence of the majority-side traffic at
        // the rejoined minority member too.
        cluster.heal_pair(p0, p1);
        cluster.heal_pair(p0, p2);
        if !wait_for(Duration::from_secs(30), || group_view_size(&cluster, 0, 3)) {
            eprintln!("gcs-shard-bench: FAIL: group 0 full view never re-formed after heal");
            failed = true;
        }
        let g0_total = phase1_total + part_ops as usize;
        if !cluster.await_group_deliveries(0, g0_total, Duration::from_secs(30)) {
            eprintln!("gcs-shard-bench: FAIL: group 0 did not converge after the merge");
            failed = true;
        }
        // Settle past the stabilization bound so the monitors see the
        // post-heal view change inside its excuse window.
        let b = BoundParams::standard(a.members, a.delta_ms).b_ms();
        std::thread::sleep(Duration::from_millis(b + 200));
    }

    let mut checks: Vec<(String, bool)> = Vec::new();
    if a.check {
        // Per-key linearizability over each group's per-member delivered
        // KV command streams (snapshotted before shutdown).
        for g in 0..a.groups {
            let streams: Vec<Vec<Value>> = cluster
                .delivered(g)
                .into_values()
                .map(|s| s.into_iter().map(|(_, v)| v).collect())
                .collect();
            let lin = check_per_key_linearizable(&streams);
            if let Err(e) = &lin {
                eprintln!("gcs-shard-bench: FAIL: group {g} per-key linearizability: {e}");
            }
            checks.push((format!("kv_linearizable_g{g}"), lin.is_ok()));
        }

        // b/d bound monitors over each group's own event stream.
        for g in 0..a.groups {
            let obs = cluster.group_obs(g);
            let events = obs.trace.snapshot();
            let now_ms = obs.trace.now_ms();
            let k = cluster.config().groups[g as usize].len() as u32;
            let params = BoundParams::standard(k, a.delta_ms);
            let mut stab = StabilizationMonitor::new(params);
            let mut round = TokenRoundMonitor::new(params);
            stab.feed_all(&events);
            round.feed_all(&events);
            let stab = stab.finish();
            let round = round.finish(now_ms);
            if obs.trace.evicted() > 0 {
                eprintln!(
                    "gcs-shard-bench: FAIL: group {g} trace ring evicted {} events",
                    obs.trace.evicted()
                );
                failed = true;
            }
            if !stab.ok() {
                eprintln!(
                    "gcs-shard-bench: FAIL: group {g} stabilization monitor (b = {} ms): {:?}",
                    stab.bound_ms,
                    stab.violations.first()
                );
            }
            if !round.ok() {
                eprintln!(
                    "gcs-shard-bench: FAIL: group {g} token-round monitor (d = {} ms): {:?}",
                    round.bound_ms,
                    round.violations.first()
                );
            }
            checks.push((format!("stabilization_monitor_g{g}"), stab.ok()));
            checks.push((format!("token_round_monitor_g{g}"), round.ok()));
        }

        // VS cause and TO checkers over each group's merged recorded
        // trace — each group is a complete, separately-checkable VS/TO
        // deployment.
        let members: Vec<_> =
            (0..a.groups).map(|g| cluster.config().groups[g as usize].clone()).collect();
        let (traces, _report) = cluster.stop();
        for g in 0..a.groups {
            let trace = &traces[&g];
            let to = check_to_trace(&to_obs(trace).untimed());
            if !to.ok() {
                eprintln!(
                    "gcs-shard-bench: FAIL: group {g} TO checker: {:?}",
                    to.violations.first()
                );
            }
            let cause = check_trace(&vs_actions(trace), &members[g as usize]);
            if !cause.ok() {
                eprintln!(
                    "gcs-shard-bench: FAIL: group {g} VS cause checker: {:?}",
                    cause.violations.first()
                );
            }
            checks.push((format!("to_checker_g{g}"), to.ok()));
            checks.push((format!("vs_cause_checker_g{g}"), cause.ok()));
        }
        failed |= checks.iter().any(|(_, ok)| !ok);
    } else {
        cluster.stop();
    }

    let json = json_result(&a, &reports, aggregate, partition_stats, &checks);
    if let Err(e) = std::fs::write(&a.out, &json) {
        eprintln!("gcs-shard-bench: cannot write {}: {e}", a.out);
        failed = true;
    }

    for (g, r) in &reports {
        let h = &r.latency_us;
        println!(
            "gcs-shard-bench: group {g}: {:.1} ops/s | p50 {} us | p95 {} us | p99 {} us",
            r.throughput_ops(),
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
        );
    }
    println!(
        "gcs-shard-bench: {} nodes, {} groups x {} ops: {aggregate:.1} ops/s aggregate",
        a.nodes, a.groups, a.ops
    );

    if let Some(floor) = a.floor {
        if aggregate < floor {
            eprintln!(
                "gcs-shard-bench: FAIL: {aggregate:.1} aggregate ops/s is below the floor of {floor} ops/s"
            );
            failed = true;
        } else {
            println!("gcs-shard-bench: aggregate throughput gate passed ({aggregate:.1} >= {floor} ops/s)");
        }
    }
    if failed {
        exit(1);
    }
}
