//! A keyed load-generating client for one group of a sharded
//! deployment: submits encoded [`KvCmd`]s whose keys hash to the target
//! group, tagged [`Frame::SubmitGroup`], and matches them against the
//! [`Frame::DeliverGroup`] push stream.
//!
//! The untagged single-group generator (`gcs_net::run_load`) matches
//! deliveries by their `u64` payload; KV commands are structured values,
//! so this one matches by [`Value::fingerprint`] — the same collision-free
//! identity the runtime stamps into its trace events. One generator
//! instance drives one group; the benchmark runs one per group
//! concurrently and sums the throughputs.

use crate::map::ShardMap;
use gcs_apps::KvCmd;
use gcs_model::ProcId;
use gcs_net::codec::{read_frame, write_frame, Frame, FrameWriter, HelloKind};
use gcs_net::{Histogram, LoadMode, LoadReport};
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Keyed load parameters for one group.
#[derive(Clone, Debug)]
pub struct ShardLoadConfig {
    /// The group this generator drives. Only seeds whose derived key
    /// hashes to this group are submitted.
    pub group: u32,
    /// Timed operations to submit.
    pub ops: u64,
    /// Size of the keyspace the seed → command mapping draws from.
    pub keys: u64,
    /// Seeds are scanned upward from here; distinct generators against
    /// one cluster must use disjoint seed ranges so fingerprints (and
    /// KV tags) stay unique.
    pub seed_base: u64,
    /// Driving discipline (closed window or open rate).
    pub mode: LoadMode,
    /// Give up waiting for deliveries after this long with no progress.
    pub idle_timeout: Duration,
    /// Operations submitted and completed before the timed window opens
    /// (excluded from the histogram and elapsed time).
    pub warmup: u64,
}

/// Plans the seed sequence for a run: the first `warmup + ops` seeds at
/// or above `seed_base` whose derived key belongs to `cfg.group` under
/// `map`. Scanning (rather than striding) keeps the mapping honest for
/// any group count.
fn plan_seeds(map: &ShardMap, cfg: &ShardLoadConfig) -> Vec<u64> {
    let want = (cfg.warmup + cfg.ops) as usize;
    let mut seeds = Vec::with_capacity(want);
    let mut seed = cfg.seed_base;
    while seeds.len() < want {
        if map.key_group(KvCmd::from_seed(seed, cfg.keys).key()) == cfg.group {
            seeds.push(seed);
        }
        seed += 1;
    }
    seeds
}

/// Runs one keyed load session for `cfg.group` against the group member
/// at `addr`. Reports full submit→total-order→deliver latency as
/// observed at that member.
pub fn run_shard_load(
    addr: SocketAddr,
    map: &ShardMap,
    cfg: &ShardLoadConfig,
) -> io::Result<LoadReport> {
    let seeds = plan_seeds(map, cfg);
    let group = cfg.group;

    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Frame::Hello { node: ProcId(u32::MAX), generation: 0, kind: HelloKind::Client },
    )?;

    // Reader thread: forward the fingerprints of values delivered by our
    // group, one channel send per burst. View pushes and other groups'
    // deliveries are skipped, not errors — the node multiplexes every
    // subscription onto this socket.
    let (tx, rx) = mpsc::channel::<(Vec<u64>, Instant)>();
    let read_half = stream.try_clone()?;
    let reader = std::thread::spawn(move || {
        let mut read_half = io::BufReader::with_capacity(256 * 1024, read_half);
        let mut burst: Vec<u64> = Vec::new();
        loop {
            match read_frame(&mut read_half) {
                Ok(Some(f)) => {
                    match f {
                        Frame::Deliver { a, .. } if group == 0 => burst.push(a.fingerprint()),
                        Frame::DeliverBatch(batch) if group == 0 => {
                            burst.extend(batch.iter().map(|(_, a)| a.fingerprint()));
                        }
                        Frame::DeliverGroup { group: g, batch } if g == group => {
                            burst.extend(batch.iter().map(|(_, a)| a.fingerprint()));
                        }
                        // Other groups' deliveries and view pushes are
                        // skipped — but they must still flush a pending
                        // burst below, or completions collected before a
                        // foreign frame strand until the next read.
                        _ => {}
                    }
                    if burst.is_empty() || buffer_has_frame(&read_half) {
                        continue;
                    }
                    if tx.send((std::mem::take(&mut burst), Instant::now())).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => return,
            }
        }
    });

    // Whether the reader's buffer already holds one complete frame (so
    // draining it cannot block on the socket).
    fn buffer_has_frame(r: &io::BufReader<TcpStream>) -> bool {
        let buf = r.buffer();
        let Some(hdr) = buf.get(..4) else { return false };
        let Ok(hdr) = <[u8; 4]>::try_from(hdr) else { return false };
        let len = u32::from_be_bytes(hdr) as usize;
        buf.len() >= 4usize.saturating_add(len)
    }

    // Submits the next `count` planned commands as one coalesced tagged
    // batch.
    struct Submitter<'a> {
        seeds: &'a [u64],
        keys: u64,
        group: u32,
        next: usize,
        submitted: u64,
    }
    impl Submitter<'_> {
        fn submit_batch(
            &mut self,
            stream: &mut TcpStream,
            fw: &mut FrameWriter,
            pending: &mut BTreeMap<u64, Instant>,
            count: u64,
        ) -> io::Result<()> {
            if count == 0 {
                return Ok(());
            }
            fw.clear();
            let now = Instant::now();
            let mut batch = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let Some(&seed) = self.seeds.get(self.next) else { break };
                self.next += 1;
                self.submitted += 1;
                let v = KvCmd::from_seed(seed, self.keys).encode();
                pending.insert(v.fingerprint(), now);
                batch.push(v);
            }
            if batch.is_empty() {
                return Ok(());
            }
            let frame = if self.group == 0 {
                Frame::SubmitBatch(batch)
            } else {
                Frame::SubmitGroup { group: self.group, batch }
            };
            fw.push(&frame);
            fw.write_to(stream)
        }
        fn remaining_until(&self, hi: usize) -> u64 {
            hi.saturating_sub(self.next) as u64
        }
    }

    let mut fw = FrameWriter::new();
    let mut pending: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut sub = Submitter { seeds: &seeds, keys: cfg.keys, group, next: 0, submitted: 0 };

    // Warm-up phase: drive the group's ring through its first rotations
    // before any sample is taken.
    if cfg.warmup > 0 {
        let warm_hi = cfg.warmup as usize;
        let window = match cfg.mode {
            LoadMode::Closed { window } => window.max(1),
            LoadMode::Open { .. } => 32,
        } as u64;
        let count = window.min(sub.remaining_until(warm_hi));
        sub.submit_batch(&mut stream, &mut fw, &mut pending, count)?;
        let mut last_progress = Instant::now();
        let mut done = 0u64;
        while done < cfg.warmup {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok((xs, _)) => {
                    for x in xs {
                        if pending.remove(&x).is_some() {
                            done += 1;
                        }
                    }
                    while let Ok((ys, _)) = rx.try_recv() {
                        for y in ys {
                            if pending.remove(&y).is_some() {
                                done += 1;
                            }
                        }
                    }
                    last_progress = Instant::now();
                    let room = window.saturating_sub(pending.len() as u64);
                    let count = room.min(sub.remaining_until(warm_hi));
                    sub.submit_batch(&mut stream, &mut fw, &mut pending, count)?;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if last_progress.elapsed() > cfg.idle_timeout {
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Straggling warm-up deliveries must not leak cold-start
        // latencies into the timed histogram.
        pending.clear();
        sub.submitted = 0;
    }

    let hi = seeds.len();
    let latency: Histogram = Histogram::new();
    let started = Instant::now();
    let mut last_progress = Instant::now();
    let mut finished_at = started;

    match cfg.mode {
        LoadMode::Closed { window } => {
            let window = window.max(1) as u64;
            let count = window.min(sub.remaining_until(hi));
            sub.submit_batch(&mut stream, &mut fw, &mut pending, count)?;
            while !pending.is_empty() {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok((xs, at)) => {
                        for x in xs {
                            if let Some(t0) = pending.remove(&x) {
                                latency.record(at.duration_since(t0).as_micros() as u64);
                                finished_at = at;
                            }
                        }
                        while let Ok((ys, at2)) = rx.try_recv() {
                            for y in ys {
                                if let Some(t0) = pending.remove(&y) {
                                    latency.record(at2.duration_since(t0).as_micros() as u64);
                                    finished_at = at2;
                                }
                            }
                        }
                        last_progress = Instant::now();
                        let room = window.saturating_sub(pending.len() as u64);
                        let count = room.min(sub.remaining_until(hi));
                        sub.submit_batch(&mut stream, &mut fw, &mut pending, count)?;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if last_progress.elapsed() > cfg.idle_timeout {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        LoadMode::Open { rate } => {
            let rate = rate.max(1);
            let gap = Duration::from_nanos(1_000_000_000 / rate);
            let mut due = Instant::now();
            while sub.next < hi || !pending.is_empty() {
                let mut burst = 0u64;
                while (sub.next as u64 + burst) < hi as u64 && Instant::now() >= due {
                    burst += 1;
                    due += gap;
                }
                sub.submit_batch(&mut stream, &mut fw, &mut pending, burst)?;
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok((xs, at)) => {
                        for x in xs {
                            if let Some(t0) = pending.remove(&x) {
                                latency.record(at.duration_since(t0).as_micros() as u64);
                                finished_at = at;
                            }
                        }
                        while let Ok((ys, at2)) = rx.try_recv() {
                            for y in ys {
                                if let Some(t0) = pending.remove(&y) {
                                    latency.record(at2.duration_since(t0).as_micros() as u64);
                                    finished_at = at2;
                                }
                            }
                        }
                        last_progress = Instant::now();
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if sub.next >= hi && last_progress.elapsed() > cfg.idle_timeout {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
    }

    let delivered = latency.count();
    let elapsed =
        if delivered > 0 { finished_at.duration_since(started) } else { started.elapsed() };
    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();
    Ok(LoadReport { submitted: sub.submitted, delivered, elapsed, latency_us: latency })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ring_map() -> ShardMap {
        let groups = (0..4u32)
            .map(|i| (0..3u32).map(|j| ProcId((i + j) % 5)).collect::<BTreeSet<_>>())
            .collect();
        ShardMap::new(groups)
    }

    #[test]
    fn planned_seeds_all_route_to_the_target_group() {
        let map = ring_map();
        for g in 0..4 {
            let cfg = ShardLoadConfig {
                group: g,
                ops: 40,
                keys: 16,
                seed_base: 1000,
                mode: LoadMode::Closed { window: 8 },
                idle_timeout: Duration::from_secs(1),
                warmup: 10,
            };
            let seeds = plan_seeds(&map, &cfg);
            assert_eq!(seeds.len(), 50);
            for s in seeds {
                assert_eq!(map.key_group(KvCmd::from_seed(s, 16).key()), g);
            }
        }
    }

    #[test]
    fn disjoint_seed_ranges_produce_disjoint_fingerprints() {
        let map = ring_map();
        let mut seen = BTreeSet::new();
        for g in 0..4u32 {
            let cfg = ShardLoadConfig {
                group: g,
                ops: 30,
                keys: 16,
                seed_base: u64::from(g) * 1_000_000,
                mode: LoadMode::Closed { window: 8 },
                idle_timeout: Duration::from_secs(1),
                warmup: 0,
            };
            for s in plan_seeds(&map, &cfg) {
                let fp = KvCmd::from_seed(s, 16).encode().fingerprint();
                assert!(seen.insert(fp), "fingerprint collision across generators");
            }
        }
    }
}
