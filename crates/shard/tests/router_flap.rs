//! Router failover under view flapping: the client-side [`RouterCore`]
//! replayed against the view-churn storm the hostile corpus inflicts on
//! the server side. The router must keep producing live targets with a
//! bounded number of `retry_next` rotations per stale-map episode, and
//! must not livelock on a stale map once the storm subsides.

use gcs_model::{ProcId, View, ViewId};
use gcs_shard::{RouterCore, ShardMap};
use std::collections::BTreeSet;

fn procs(ids: &[u32]) -> BTreeSet<ProcId> {
    ids.iter().map(|&i| ProcId(i)).collect()
}

/// The benchmark topology: 5 nodes, 4 groups of 3 in a ring layout.
fn router() -> RouterCore {
    let groups = (0..4u32).map(|i| procs(&[i, (i + 1) % 5, (i + 2) % 5])).collect();
    RouterCore::new(ShardMap::new(groups))
}

/// A flap storm replayed as the stream of `View` frames the server push
/// channel would deliver: one member of the group oscillates out of and
/// back into the view, one epoch per half-cycle. Throughout the storm
/// every routing decision must land on a member of the *current* view,
/// and the map version must advance monotonically with each fold.
#[test]
fn flap_storm_views_never_route_to_departed_members() {
    let mut r = router();
    let group = 0u32;
    let full = r.map().members(group).clone();
    let flapper = *full.iter().last().expect("group has members");
    let survivors: BTreeSet<ProcId> = full.iter().copied().filter(|&p| p != flapper).collect();

    let mut last_version = r.map().version();
    for cycle in 0..50u64 {
        // Down half-cycle: the flapper drops out.
        let down = View::new(ViewId::new(2 * cycle + 1, flapper), survivors.clone());
        r.on_view(group, &down);
        assert!(r.map().version() > last_version, "view fold must bump the map version");
        last_version = r.map().version();
        let p = r.member_for(group).expect("survivors remain routable");
        assert!(survivors.contains(&p), "cycle {cycle}: routed to departed member {p}");

        // Up half-cycle: the flapper merges back.
        let up = View::new(ViewId::new(2 * cycle + 2, flapper), full.clone());
        r.on_view(group, &up);
        last_version = r.map().version();
        let p = r.member_for(group).expect("full view is routable");
        assert!(full.contains(&p), "cycle {cycle}: routed outside the merged view");
    }
}

/// A stale-map episode mid-flap: the cached map still lists the full
/// group but the preferred member sits on the wrong side of the flap.
/// Rotation must visit every *other* member within `|group| - 1`
/// retries — the bound the TCP client's retry budget is set from — and
/// once every alternative is down-marked, report exhaustion rather
/// than cycling forever.
#[test]
fn stale_map_retry_rotations_are_bounded() {
    let mut r = router();
    let group = 1u32;
    let size = r.map().members(group).len();
    let first = r.member_for(group).expect("initial target");

    // Pure rotation (no failures yet) visits every other member before
    // coming back around: |group| - 1 distinct alternatives.
    let mut seen = BTreeSet::new();
    seen.insert(first);
    for i in 0..size - 1 {
        let next = r.retry_next(group).expect("alternatives remain");
        assert!(seen.insert(next), "rotation revisited {next} after {i} retries");
    }
    assert_eq!(seen.len(), size, "rotation must offer every member within one cycle");

    // Now the episode turns out to be a real outage: each rotated-to
    // member's connection dies in turn. Exhaustion must surface within
    // |group| down-marks, never a livelock.
    let mut last = r.member_for(group).expect("still routable");
    for _ in 0..size - 1 {
        r.mark_down(last);
        last = r.retry_next(group).expect("a live alternative remains");
    }
    r.mark_down(last);
    assert_eq!(r.retry_next(group), None, "all members down must report exhaustion");
    assert_eq!(r.member_for(group), None);
}

/// No stale-map livelock: after a storm leaves the router pointing at a
/// member that then disappears in the *final* view, the next routing
/// decision redirects immediately — one view fold, zero retries — and
/// subsequent decisions are stable (no oscillation between members).
#[test]
fn post_storm_map_converges_without_livelock() {
    let mut r = router();
    let group = 2u32;
    let full = r.map().members(group).clone();

    // Storm: every member flaps out and back once, in turn.
    let mut epoch = 1u64;
    for &victim in &full {
        let rest: BTreeSet<ProcId> = full.iter().copied().filter(|&p| p != victim).collect();
        r.on_view(group, &View::new(ViewId::new(epoch, victim), rest));
        epoch += 1;
        r.on_view(group, &View::new(ViewId::new(epoch, victim), full.clone()));
        epoch += 1;
    }

    // The storm settles on a final view missing the current preferred
    // member: routing must redirect on the very next call.
    let preferred = r.member_for(group).expect("routable after storm");
    let final_set: BTreeSet<ProcId> = full.iter().copied().filter(|&p| p != preferred).collect();
    r.on_view(group, &View::new(ViewId::new(epoch, preferred), final_set.clone()));
    let redirected = r.member_for(group).expect("redirect target");
    assert_ne!(redirected, preferred, "kept routing to a member the final view excludes");
    assert!(final_set.contains(&redirected));

    // Stability: repeated decisions stick to one member (no ping-pong).
    for _ in 0..10 {
        assert_eq!(r.member_for(group), Some(redirected), "target oscillated after settling");
    }
}

/// Down-marks and view pushes interleave during a flap without leaking
/// state: a member marked down while out of the view is revived by the
/// merge view that lists it, and the down-set never blocks routing to
/// fresh-view members.
#[test]
fn down_marks_are_revived_by_merge_views() {
    let mut r = router();
    let group = 3u32;
    let full = r.map().members(group).clone();
    let flapper = *full.iter().next().expect("group has members");
    let rest: BTreeSet<ProcId> = full.iter().copied().filter(|&p| p != flapper).collect();

    for epoch in 0..20u64 {
        // The connection to the flapper dies, then the shrunk view
        // arrives (the server side noticed too).
        r.mark_down(flapper);
        r.on_view(group, &View::new(ViewId::new(2 * epoch + 1, flapper), rest.clone()));
        let p = r.member_for(group).expect("survivors routable");
        assert!(rest.contains(&p));

        // The merge view lists the flapper again: it must be routable
        // without any explicit up-mark (the view *is* the up-mark).
        r.on_view(group, &View::new(ViewId::new(2 * epoch + 2, flapper), full.clone()));
        r.mark_down(p); // push traffic off the survivor...
        let q = r.member_for(group).expect("flapper revived by merge view");
        assert_ne!(q, p);
        // ...and revive it for the next cycle.
        r.on_view(group, &View::new(ViewId::new(2 * epoch + 2, flapper), full.clone()));
    }
}
