//! The sharded key-value store: the first *application workload* for the
//! multi-group deployment.
//!
//! Commands (`Put`/`Get`/`Cas`) ride inside opaque broadcast [`Value`]s
//! through one VS/TO group per shard; every replica of a shard applies
//! its group's delivered stream in the common total order, so the
//! per-key histories of any two replicas are prefix-related and `Cas`
//! gets true compare-and-swap semantics without any extra coordination.
//!
//! Each command carries a client-chosen `tag` uniquifier: the trace
//! checkers and the token-round monitor assume broadcast values are
//! unique per run, and two logically identical writes (`Put x=1` twice)
//! must still be distinct payloads.
//!
//! [`check_per_key_linearizable`] is the per-key consistency checker the
//! cross-shard scenarios use: given the delivered streams of a shard's
//! replicas it verifies that every key's command subsequence is
//! prefix-related across replicas, that no command was delivered twice,
//! and it returns the final store state reached by the longest history.

use crate::rsm::StateMachine;
use crate::wire::{WireReader, WireWriter};
use gcs_model::Value;
use std::collections::BTreeMap;

/// A sharded key-value store command.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KvCmd {
    /// Set `key` to `value`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: i64,
        /// Uniquifier (see the module docs).
        tag: u64,
    },
    /// Read `key`. Reads go through the broadcast so they are serialized
    /// against writes — the atomic-register discipline of the paper's
    /// footnote 3, not the local-read sequentially consistent one.
    Get {
        /// The key.
        key: String,
        /// Uniquifier.
        tag: u64,
    },
    /// Set `key` to `value` iff its current value equals `expect`
    /// (`None` = key absent).
    Cas {
        /// The key.
        key: String,
        /// The expected current value (`None` expects absence).
        expect: Option<i64>,
        /// The new value on success.
        value: i64,
        /// Uniquifier.
        tag: u64,
    },
}

/// Magic prefix for sharded-store commands, distinct from `ops::KvOp`'s
/// `Kv` so the two command languages can never be confused.
const MAGIC: [u8; 2] = *b"KS";

impl KvCmd {
    /// Encodes the command into an opaque broadcast value.
    pub fn encode(&self) -> Value {
        // `Cas` uses two opcodes instead of an option flag so the codec
        // helpers stay field-shaped: 2 expects a present value, 3 expects
        // absence.
        let bytes = match self {
            KvCmd::Put { key, value, tag } => {
                WireWriter::new(MAGIC, 0).str(key).i64(*value).u64(*tag)
            }
            KvCmd::Get { key, tag } => WireWriter::new(MAGIC, 1).str(key).u64(*tag),
            KvCmd::Cas { key, expect: Some(e), value, tag } => {
                WireWriter::new(MAGIC, 2).str(key).i64(*e).i64(*value).u64(*tag)
            }
            KvCmd::Cas { key, expect: None, value, tag } => {
                WireWriter::new(MAGIC, 3).str(key).i64(*value).u64(*tag)
            }
        };
        Value::from(bytes.finish())
    }

    /// Decodes a broadcast value back into a command. Returns `None` for
    /// payloads that are not sharded-store commands.
    pub fn decode(v: &Value) -> Option<KvCmd> {
        let (opcode, mut r) = WireReader::open(v.as_bytes(), MAGIC)?;
        let cmd = match opcode {
            0 => KvCmd::Put { key: r.str()?, value: r.i64()?, tag: r.u64()? },
            1 => KvCmd::Get { key: r.str()?, tag: r.u64()? },
            2 => {
                KvCmd::Cas { key: r.str()?, expect: Some(r.i64()?), value: r.i64()?, tag: r.u64()? }
            }
            3 => KvCmd::Cas { key: r.str()?, expect: None, value: r.i64()?, tag: r.u64()? },
            _ => return None,
        };
        r.end()?;
        Some(cmd)
    }

    /// The key this command operates on.
    pub fn key(&self) -> &str {
        match self {
            KvCmd::Put { key, .. } | KvCmd::Get { key, .. } | KvCmd::Cas { key, .. } => key,
        }
    }

    /// The command's uniquifier tag.
    pub fn tag(&self) -> u64 {
        match self {
            KvCmd::Put { tag, .. } | KvCmd::Get { tag, .. } | KvCmd::Cas { tag, .. } => *tag,
        }
    }

    /// The deterministic seed → command mapping shared by the simulator
    /// and the load generator: `seed` picks the key (modulo `keys`) and
    /// the operation kind, and doubles as the uniquifier, so the same
    /// submitted seed always denotes the same command on every replica.
    pub fn from_seed(seed: u64, keys: u64) -> KvCmd {
        let keys = keys.max(1);
        let key = format!("k{:03}", seed % keys);
        match (seed / keys) % 4 {
            0 => KvCmd::Put { key, value: seed as i64, tag: seed },
            1 => KvCmd::Get { key, tag: seed },
            2 => KvCmd::Cas { key, expect: None, value: seed as i64, tag: seed },
            _ => KvCmd::Cas {
                key,
                expect: Some((seed as i64).wrapping_sub(1)),
                value: seed as i64,
                tag: seed,
            },
        }
    }
}

/// What applying one [`KvCmd`] observed or did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KvOutcome {
    /// A `Put` happened; `prev` is the overwritten value.
    Put {
        /// The previous value, if the key existed.
        prev: Option<i64>,
    },
    /// A `Get` read the key.
    Get {
        /// The value read, if the key existed.
        value: Option<i64>,
    },
    /// A `Cas` resolved.
    Cas {
        /// Whether the swap happened.
        ok: bool,
        /// The value actually found before the operation.
        actual: Option<i64>,
    },
}

/// The replicated store: one map per shard, fed by that shard's totally
/// ordered delivered stream via the [`StateMachine`] interface.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvShardStore {
    map: BTreeMap<String, i64>,
}

impl KvShardStore {
    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<i64> {
        self.map.get(key).copied()
    }

    /// The number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Applies one decoded command; the sequential per-key semantics the
    /// checker replays.
    pub fn apply_cmd(&mut self, cmd: &KvCmd) -> KvOutcome {
        match cmd {
            KvCmd::Put { key, value, .. } => {
                KvOutcome::Put { prev: self.map.insert(key.clone(), *value) }
            }
            KvCmd::Get { key, .. } => KvOutcome::Get { value: self.get(key) },
            KvCmd::Cas { key, expect, value, .. } => {
                let actual = self.get(key);
                let ok = actual == *expect;
                if ok {
                    self.map.insert(key.clone(), *value);
                }
                KvOutcome::Cas { ok, actual }
            }
        }
    }
}

impl StateMachine for KvShardStore {
    type Output = KvOutcome;

    fn apply(&mut self, payload: &Value) -> Option<KvOutcome> {
        let cmd = KvCmd::decode(payload)?;
        Some(self.apply_cmd(&cmd))
    }
}

/// Per-key consistency check over the delivered streams of one shard's
/// replicas (the per-key linearizability obligation the TO order
/// discharges).
///
/// For every key: each replica's subsequence of commands on that key
/// must be a prefix of the longest replica's, and no tag may appear
/// twice (duplicate delivery). On success, returns the store state
/// reached by replaying, for each key, the longest observed history —
/// i.e. the most advanced consistent state of the shard.
pub fn check_per_key_linearizable(streams: &[Vec<Value>]) -> Result<KvShardStore, String> {
    // Decode each replica's stream and split it into per-key
    // subsequences (non-command payloads are not part of the workload).
    let mut per_key: BTreeMap<String, Vec<Vec<KvCmd>>> = BTreeMap::new();
    for (node, stream) in streams.iter().enumerate() {
        for v in stream {
            if let Some(cmd) = KvCmd::decode(v) {
                let seqs = per_key.entry(cmd.key().to_string()).or_default();
                if seqs.len() <= node {
                    seqs.resize(node + 1, Vec::new());
                }
                seqs[node].push(cmd);
            }
        }
    }

    let mut store = KvShardStore::default();
    for (key, seqs) in &per_key {
        // The longest history is the reference; every other replica must
        // hold a literal prefix of it.
        let longest = seqs.iter().max_by_key(|s| s.len()).expect("key implies a sequence");
        for (node, s) in seqs.iter().enumerate() {
            if s.len() > longest.len() || s[..] != longest[..s.len()] {
                return Err(format!(
                    "key {key:?}: replica {node}'s history is not a prefix of the longest"
                ));
            }
        }
        let mut tags: Vec<u64> = longest.iter().map(KvCmd::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        if tags.len() != longest.len() {
            return Err(format!("key {key:?}: a command tag was delivered twice"));
        }
        for cmd in longest {
            store.apply_cmd(cmd);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_roundtrip() {
        for cmd in [
            KvCmd::Put { key: "a".into(), value: -3, tag: 1 },
            KvCmd::Get { key: "b".into(), tag: 2 },
            KvCmd::Cas { key: "c".into(), expect: Some(7), value: 8, tag: 3 },
            KvCmd::Cas { key: "d".into(), expect: None, value: 9, tag: 4 },
        ] {
            assert_eq!(KvCmd::decode(&cmd.encode()), Some(cmd));
        }
        assert_eq!(KvCmd::decode(&Value::from_u64(5)), None);
        // The other command language must not decode as this one.
        assert_eq!(KvCmd::decode(&crate::ops::KvOp::Nop { tag: 1 }.encode()), None);
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let mut s = KvShardStore::default();
        let out = s.apply_cmd(&KvCmd::Cas { key: "x".into(), expect: None, value: 1, tag: 0 });
        assert_eq!(out, KvOutcome::Cas { ok: true, actual: None });
        let out = s.apply_cmd(&KvCmd::Cas { key: "x".into(), expect: Some(9), value: 2, tag: 1 });
        assert_eq!(out, KvOutcome::Cas { ok: false, actual: Some(1) });
        assert_eq!(s.get("x"), Some(1));
        let out = s.apply_cmd(&KvCmd::Cas { key: "x".into(), expect: Some(1), value: 2, tag: 2 });
        assert_eq!(out, KvOutcome::Cas { ok: true, actual: Some(1) });
        assert_eq!(s.get("x"), Some(2));
    }

    #[test]
    fn seed_mapping_is_deterministic_and_unique() {
        for seed in 0..64 {
            let a = KvCmd::from_seed(seed, 8);
            let b = KvCmd::from_seed(seed, 8);
            assert_eq!(a, b);
            assert_eq!(a.tag(), seed);
        }
        let payloads: std::collections::BTreeSet<Value> =
            (0..64).map(|s| KvCmd::from_seed(s, 8).encode()).collect();
        assert_eq!(payloads.len(), 64, "seeds must map to distinct payloads");
    }

    #[test]
    fn checker_accepts_prefix_related_histories() {
        let cmds: Vec<Value> = (0..12).map(|s| KvCmd::from_seed(s, 3).encode()).collect();
        let full = cmds.clone();
        let partial = cmds[..7].to_vec();
        let store = check_per_key_linearizable(&[full.clone(), partial]).expect("consistent");
        let mut reference = KvShardStore::default();
        for v in &full {
            reference.apply_cmd(&KvCmd::decode(v).unwrap());
        }
        assert_eq!(store, reference);
    }

    #[test]
    fn checker_rejects_divergent_per_key_order() {
        let a = KvCmd::Put { key: "k".into(), value: 1, tag: 1 }.encode();
        let b = KvCmd::Put { key: "k".into(), value: 2, tag: 2 }.encode();
        let err = check_per_key_linearizable(&[vec![a.clone(), b.clone()], vec![b, a]])
            .expect_err("divergent order");
        assert!(err.contains("not a prefix"), "{err}");
    }

    #[test]
    fn checker_rejects_duplicate_delivery() {
        let a = KvCmd::Put { key: "k".into(), value: 1, tag: 1 }.encode();
        let err =
            check_per_key_linearizable(&[vec![a.clone(), a]]).expect_err("duplicate delivery");
        assert!(err.contains("delivered twice"), "{err}");
    }

    #[test]
    fn unrelated_keys_do_not_constrain_each_other() {
        let a = KvCmd::Put { key: "a".into(), value: 1, tag: 1 }.encode();
        let b = KvCmd::Put { key: "b".into(), value: 2, tag: 2 }.encode();
        // Different interleavings of commands on different keys are fine.
        let store = check_per_key_linearizable(&[vec![a.clone(), b.clone()], vec![b, a]])
            .expect("per-key independence");
        assert_eq!(store.get("a"), Some(1));
        assert_eq!(store.get("b"), Some(2));
    }
}
