//! The replicated state machine layer (Lamport/Schneider, via the
//! paper's footnote 3).

use gcs_model::Value;
use std::fmt;

/// A deterministic state machine replicated via totally ordered
/// broadcast.
pub trait StateMachine: Clone + fmt::Debug {
    /// The output of applying one command.
    type Output: fmt::Debug;

    /// Applies one delivered payload. Unrecognized payloads should be
    /// ignored (return `None`).
    fn apply(&mut self, payload: &Value) -> Option<Self::Output>;
}

/// One replica: a state machine plus the count of applied commands.
#[derive(Clone, Debug)]
pub struct Replica<S> {
    state: S,
    applied: usize,
}

impl<S: StateMachine> Replica<S> {
    /// Creates a replica from an initial state.
    pub fn new(state: S) -> Self {
        Replica { state, applied: 0 }
    }

    /// The replica state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// How many commands have been applied.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Applies one delivered payload.
    pub fn apply_payload(&mut self, payload: &Value) -> Option<S::Output> {
        self.applied += 1;
        self.state.apply(payload)
    }

    /// Applies a whole delivered stream (ignoring origins).
    pub fn apply_stream<'a>(&mut self, stream: impl IntoIterator<Item = &'a Value>) {
        for v in stream {
            self.apply_payload(v);
        }
    }
}

/// Replays per-processor delivered streams into replicas of `initial` and
/// verifies convergence: any two replicas agree on the state reached
/// after their common applied prefix. Because TO guarantees the streams
/// are prefixes of one order, it suffices to check that shorter streams
/// are literal prefixes of longer ones and that equal-length replicas
/// have equal states.
///
/// Returns the replicas on success, or a description of the divergence.
pub fn replay_and_check<S>(initial: S, streams: &[Vec<Value>]) -> Result<Vec<Replica<S>>, String>
where
    S: StateMachine + PartialEq,
{
    for (i, a) in streams.iter().enumerate() {
        for (j, b) in streams.iter().enumerate().skip(i + 1) {
            if !gcs_model::seq::is_prefix(a, b) && !gcs_model::seq::is_prefix(b, a) {
                return Err(format!("streams {i} and {j} are not prefix-related"));
            }
        }
    }
    let replicas: Vec<Replica<S>> = streams
        .iter()
        .map(|s| {
            let mut r = Replica::new(initial.clone());
            r.apply_stream(s);
            r
        })
        .collect();
    for (i, a) in replicas.iter().enumerate() {
        for (j, b) in replicas.iter().enumerate().skip(i + 1) {
            if a.applied == b.applied && a.state != b.state {
                return Err(format!(
                    "replicas {i} and {j} applied {} commands but diverged",
                    a.applied
                ));
            }
        }
    }
    Ok(replicas)
}

/// A counter machine for tests and examples: payloads are `u64` deltas
/// encoded with [`Value::from_u64`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    /// The running total.
    pub total: u64,
}

impl StateMachine for Counter {
    type Output = u64;

    fn apply(&mut self, payload: &Value) -> Option<u64> {
        let delta = payload.as_u64()?;
        self.total += delta;
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_applies_in_order() {
        let mut r = Replica::new(Counter::default());
        assert_eq!(r.apply_payload(&Value::from_u64(3)), Some(3));
        assert_eq!(r.apply_payload(&Value::from_u64(4)), Some(7));
        assert_eq!(r.applied(), 2);
    }

    #[test]
    fn unknown_payloads_count_but_do_nothing() {
        let mut r = Replica::new(Counter::default());
        assert_eq!(r.apply_payload(&Value::from("junk")), None);
        assert_eq!(r.applied(), 1);
        assert_eq!(r.state().total, 0);
    }

    #[test]
    fn replay_detects_divergence() {
        let a = vec![Value::from_u64(1), Value::from_u64(2)];
        let b = vec![Value::from_u64(1), Value::from_u64(3)];
        let err = replay_and_check(Counter::default(), &[a, b]).unwrap_err();
        assert!(err.contains("not prefix-related"));
    }

    #[test]
    fn replay_accepts_consistent_prefixes() {
        let long = vec![Value::from_u64(1), Value::from_u64(2), Value::from_u64(3)];
        let short = long[..1].to_vec();
        let replicas = replay_and_check(Counter::default(), &[long, short]).expect("consistent");
        assert_eq!(replicas[0].state().total, 6);
        assert_eq!(replicas[1].state().total, 1);
    }
}
