//! A tiny self-describing byte codec for the command languages carried
//! inside broadcast values.
//!
//! Each command type owns a two-byte magic prefix followed by a one-byte
//! opcode and length-prefixed fields. Decoding validates the magic, the
//! opcode, and that the payload is consumed exactly, so raw test values
//! (which lack the magic) decode to `None` rather than to a garbage
//! command.

/// Incrementally writes length-prefixed fields.
pub(crate) struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Starts a payload with the given magic and opcode.
    pub(crate) fn new(magic: [u8; 2], opcode: u8) -> Self {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&magic);
        buf.push(opcode);
        WireWriter { buf }
    }

    /// Appends a u64 (little-endian, fixed 8 bytes).
    pub(crate) fn u64(mut self, x: u64) -> Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Appends an i64 (little-endian, fixed 8 bytes).
    pub(crate) fn i64(mut self, x: i64) -> Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Appends a u32 (little-endian, fixed 4 bytes).
    pub(crate) fn u32(mut self, x: u32) -> Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Appends a string as u32 length + UTF-8 bytes.
    pub(crate) fn str(mut self, s: &str) -> Self {
        self.buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Finishes the payload.
    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Incrementally reads length-prefixed fields.
pub(crate) struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Opens a payload, returning the opcode if the magic matches.
    pub(crate) fn open(buf: &'a [u8], magic: [u8; 2]) -> Option<(u8, Self)> {
        if buf.len() < 3 || buf[..2] != magic {
            return None;
        }
        Some((buf[2], WireReader { buf: &buf[3..] }))
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    /// Reads a fixed 8-byte u64.
    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a fixed 8-byte i64.
    pub(crate) fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a fixed 4-byte u32.
    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Succeeds only if the whole payload was consumed.
    pub(crate) fn end(self) -> Option<()> {
        self.buf.is_empty().then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_fields() {
        let buf = WireWriter::new(*b"ZZ", 7).str("hello").i64(-42).u64(9).u32(3).finish();
        let (op, mut r) = WireReader::open(&buf, *b"ZZ").unwrap();
        assert_eq!(op, 7);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.u64().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 3);
        r.end().unwrap();
    }

    #[test]
    fn wrong_magic_or_trailing_bytes_fail() {
        let buf = WireWriter::new(*b"AA", 1).u64(5).finish();
        assert!(WireReader::open(&buf, *b"BB").is_none());
        let (_, r) = WireReader::open(&buf, *b"AA").unwrap();
        assert!(r.end().is_none(), "unread field must fail end()");
        assert!(WireReader::open(&[1u8], *b"AA").is_none());
    }

    #[test]
    fn truncated_fields_fail() {
        let buf = WireWriter::new(*b"AA", 1).str("abc").finish();
        let (_, mut r) = WireReader::open(&buf[..buf.len() - 1], *b"AA").unwrap();
        assert!(r.str().is_none());
    }
}
