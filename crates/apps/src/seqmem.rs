//! Sequentially consistent and atomic replicated memory over totally
//! ordered broadcast (Section 3, footnote 3).
//!
//! *Sequentially consistent memory*: reads are performed immediately on
//! the local replica; updates are sent to all replicas through the
//! totally ordered broadcast and applied on delivery. *Atomic memory*:
//! all operations, including reads, go through the broadcast; a read's
//! return value is determined when the read is delivered.

use crate::ops::KvOp;
use crate::rsm::StateMachine;
use gcs_model::Value;
use std::collections::BTreeMap;

/// The replicated key-value state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, i64>,
}

impl KvStore {
    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<i64> {
        self.map.get(key).copied()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn apply_op(&mut self, op: &KvOp) -> Option<i64> {
        match op {
            KvOp::Put { key, value } => {
                self.map.insert(key.clone(), *value);
                Some(*value)
            }
            KvOp::Inc { key, by } => {
                let e = self.map.entry(key.clone()).or_insert(0);
                *e += by;
                Some(*e)
            }
            KvOp::Del { key } => self.map.remove(key),
            KvOp::Get { key } => self.get(key),
            KvOp::Nop { .. } => None,
        }
    }
}

impl StateMachine for KvStore {
    type Output = i64;

    fn apply(&mut self, payload: &Value) -> Option<i64> {
        let op = KvOp::decode(payload)?;
        // Reads do not modify state; in the sequentially consistent
        // memory they never reach the broadcast at all.
        self.apply_op(&op)
    }
}

/// A sequentially consistent memory replica: local reads against the
/// replica, writes encoded for the broadcast.
#[derive(Clone, Debug, Default)]
pub struct SeqMemory {
    store: KvStore,
    reads: Vec<(String, Option<i64>, usize)>, // (key, result, applied-at)
    applied: usize,
}

impl SeqMemory {
    /// Creates an empty replica.
    pub fn new() -> Self {
        SeqMemory::default()
    }

    /// A *read* operation: performed immediately on the local copy.
    /// The result and the local prefix length are logged for the
    /// consistency check.
    pub fn read(&mut self, key: &str) -> Option<i64> {
        let out = self.store.get(key);
        self.reads.push((key.to_string(), out, self.applied));
        out
    }

    /// Encodes a *write* for submission through the broadcast; the caller
    /// hands the returned value to `bcast`.
    pub fn write(key: impl Into<String>, value: i64) -> Value {
        KvOp::Put { key: key.into(), value }.encode()
    }

    /// Applies one delivered update.
    pub fn deliver(&mut self, payload: &Value) {
        if let Some(op) = KvOp::decode(payload) {
            self.store.apply_op(&op);
        }
        self.applied += 1;
    }

    /// The local replica state.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// The local read log.
    pub fn reads(&self) -> &[(String, Option<i64>, usize)] {
        &self.reads
    }

    /// How many updates have been applied locally.
    pub fn applied(&self) -> usize {
        self.applied
    }
}

/// Verifies sequential consistency of a set of replicas given the common
/// delivered order (the longest delivered stream): each logged read must
/// equal the value of its key after the prefix of updates the replica had
/// applied when the read happened. Combined with the TO-level guarantee
/// that all streams are prefixes of one order, this witnesses a single
/// serialization of all operations consistent with each process's program
/// order.
pub fn check_sequential_consistency(
    replicas: &[SeqMemory],
    common_order: &[Value],
) -> Result<(), String> {
    for (i, r) in replicas.iter().enumerate() {
        for (key, result, applied_at) in r.reads() {
            let mut store = KvStore::default();
            for payload in &common_order[..(*applied_at).min(common_order.len())] {
                if let Some(op) = KvOp::decode(payload) {
                    store.apply_op(&op);
                }
            }
            let expect = store.get(key);
            if expect != *result {
                return Err(format!(
                    "replica {i}: read({key}) after {applied_at} updates returned \
                     {result:?}, expected {expect:?}"
                ));
            }
        }
    }
    Ok(())
}

/// An atomic memory replica: *all* operations (including reads) are
/// serialized through the broadcast; outputs are produced at delivery.
#[derive(Clone, Debug, Default)]
pub struct AtomicMemory {
    store: KvStore,
    /// Outputs of delivered `Get` operations, in delivery order.
    outputs: Vec<(String, Option<i64>)>,
}

impl AtomicMemory {
    /// Creates an empty replica.
    pub fn new() -> Self {
        AtomicMemory::default()
    }

    /// Encodes a read for submission through the broadcast.
    pub fn read_op(key: impl Into<String>) -> Value {
        KvOp::Get { key: key.into() }.encode()
    }

    /// Applies one delivered operation, recording read outputs.
    pub fn deliver(&mut self, payload: &Value) {
        if let Some(op) = KvOp::decode(payload) {
            let out = self.store.apply_op(&op);
            if let KvOp::Get { key } = op {
                self.outputs.push((key, out));
            }
        }
    }

    /// The replica state.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Read outputs in delivery order — identical at every replica that
    /// has applied the same prefix, which is what makes this memory
    /// atomic.
    pub fn outputs(&self) -> &[(String, Option<i64>)] {
        &self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_semantics() {
        let mut s = KvStore::default();
        s.apply_op(&KvOp::Put { key: "x".into(), value: 5 });
        s.apply_op(&KvOp::Inc { key: "x".into(), by: -2 });
        assert_eq!(s.get("x"), Some(3));
        s.apply_op(&KvOp::Del { key: "x".into() });
        assert_eq!(s.get("x"), None);
        s.apply_op(&KvOp::Inc { key: "y".into(), by: 4 });
        assert_eq!(s.get("y"), Some(4));
    }

    #[test]
    fn seqmem_reads_see_local_prefix() {
        let w1 = SeqMemory::write("x", 1);
        let w2 = SeqMemory::write("x", 2);
        let mut r = SeqMemory::new();
        assert_eq!(r.read("x"), None);
        r.deliver(&w1);
        assert_eq!(r.read("x"), Some(1));
        r.deliver(&w2);
        assert_eq!(r.read("x"), Some(2));
        check_sequential_consistency(&[r], &[w1, w2]).unwrap();
    }

    #[test]
    fn consistency_check_catches_stale_log() {
        let w1 = SeqMemory::write("x", 1);
        let mut r = SeqMemory::new();
        r.deliver(&w1);
        r.read("x");
        // Corrupt the log: claim the read happened before the delivery.
        let mut bad = r.clone();
        bad.reads = vec![("x".into(), Some(1), 0)];
        assert!(check_sequential_consistency(&[bad], std::slice::from_ref(&w1)).is_err());
        check_sequential_consistency(&[r], &[w1]).unwrap();
    }

    #[test]
    fn atomic_reads_are_serialized() {
        let ops = vec![
            SeqMemory::write("x", 1),
            AtomicMemory::read_op("x"),
            SeqMemory::write("x", 2),
            AtomicMemory::read_op("x"),
        ];
        let mut a = AtomicMemory::new();
        let mut b = AtomicMemory::new();
        for op in &ops {
            a.deliver(op);
            b.deliver(op);
        }
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.outputs(), &[("x".into(), Some(1)), ("x".into(), Some(2))]);
    }
}
