//! Deterministic workload generators.
//!
//! Every generator produces a schedule of `(time, processor, value)`
//! submissions with globally unique values (a requirement of the trace
//! checkers) from an explicit seed.

use gcs_model::{ProcId, Time, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The shape of a workload.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum WorkloadKind {
    /// Submissions spaced evenly, senders round-robin.
    Uniform,
    /// Poisson-ish arrivals: random gaps, random senders.
    Random,
    /// Bursts of `burst` back-to-back submissions separated by idle gaps.
    Bursty {
        /// Submissions per burst.
        burst: usize,
    },
    /// One hot sender submits ~80% of the traffic.
    Skewed,
}

/// A workload generator.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Shape.
    pub kind: WorkloadKind,
    /// Number of processors submissions are spread over.
    pub n: u32,
    /// Total number of submissions.
    pub count: usize,
    /// First submission time.
    pub start: Time,
    /// Mean gap between submissions.
    pub mean_gap: Time,
    /// RNG seed.
    pub seed: u64,
}

impl Workload {
    /// A uniform workload of `count` submissions over `n` processors.
    pub fn uniform(n: u32, count: usize, start: Time, gap: Time) -> Self {
        Workload { kind: WorkloadKind::Uniform, n, count, start, mean_gap: gap, seed: 0 }
    }

    /// Generates the schedule: `(time, processor, value)` triples in
    /// non-decreasing time order with unique values.
    pub fn schedule(&self) -> Vec<(Time, ProcId, Value)> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut out = Vec::with_capacity(self.count);
        let mut t = self.start;
        for i in 0..self.count {
            let p = match self.kind {
                WorkloadKind::Uniform => ProcId(i as u32 % self.n),
                WorkloadKind::Random | WorkloadKind::Bursty { .. } => {
                    ProcId(rng.gen_range(0..self.n))
                }
                WorkloadKind::Skewed => {
                    if rng.gen_bool(0.8) {
                        ProcId(0)
                    } else {
                        ProcId(rng.gen_range(0..self.n))
                    }
                }
            };
            out.push((t, p, Value::from_u64(1 + i as u64)));
            t += match self.kind {
                WorkloadKind::Uniform | WorkloadKind::Skewed => self.mean_gap,
                WorkloadKind::Random => rng.gen_range(1..=2 * self.mean_gap.max(1)),
                WorkloadKind::Bursty { burst } => {
                    if (i + 1) % burst.max(1) == 0 {
                        self.mean_gap * burst as Time
                    } else {
                        1
                    }
                }
            };
        }
        out
    }

    /// The time of the last submission in the schedule.
    pub fn end_time(&self) -> Time {
        self.schedule().last().map(|(t, _, _)| *t).unwrap_or(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn values_are_unique_and_times_nondecreasing() {
        for kind in [
            WorkloadKind::Uniform,
            WorkloadKind::Random,
            WorkloadKind::Bursty { burst: 5 },
            WorkloadKind::Skewed,
        ] {
            let w = Workload { kind, n: 4, count: 100, start: 10, mean_gap: 7, seed: 3 };
            let sched = w.schedule();
            assert_eq!(sched.len(), 100);
            let values: BTreeSet<&Value> = sched.iter().map(|(_, _, v)| v).collect();
            assert_eq!(values.len(), 100, "{kind:?} produced duplicate values");
            for pair in sched.windows(2) {
                assert!(pair[0].0 <= pair[1].0, "{kind:?} times decrease");
            }
        }
    }

    #[test]
    fn skewed_workload_is_skewed() {
        let w = Workload {
            kind: WorkloadKind::Skewed,
            n: 4,
            count: 200,
            start: 0,
            mean_gap: 1,
            seed: 1,
        };
        let hot = w.schedule().iter().filter(|(_, p, _)| *p == ProcId(0)).count();
        assert!(hot > 120, "hot sender got only {hot}/200");
    }

    #[test]
    fn schedules_are_reproducible() {
        let w = Workload {
            kind: WorkloadKind::Random,
            n: 3,
            count: 50,
            start: 0,
            mean_gap: 5,
            seed: 77,
        };
        assert_eq!(w.schedule(), w.schedule());
    }
}
