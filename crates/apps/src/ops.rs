//! The key-value command language carried inside broadcast values.

use crate::wire::{WireReader, WireWriter};
use gcs_model::Value;

/// A key-value store command.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KvOp {
    /// Set `key` to `value`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: i64,
    },
    /// Add `by` to `key` (missing keys start at 0).
    Inc {
        /// The key.
        key: String,
        /// The increment (may be negative).
        by: i64,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: String,
    },
    /// Read `key` (used by the atomic-memory variant, where reads are
    /// serialized through the broadcast as well).
    Get {
        /// The key.
        key: String,
    },
    /// An opaque marker making otherwise-identical commands unique, so
    /// the encoded `Value` payloads stay distinct for the trace checkers.
    Nop {
        /// Uniquifier.
        tag: u64,
    },
}

/// Magic prefix distinguishing encoded commands from raw test values.
const MAGIC: [u8; 2] = *b"Kv";

impl KvOp {
    /// Encodes the command into an opaque broadcast value.
    pub fn encode(&self) -> Value {
        let bytes = match self {
            KvOp::Put { key, value } => WireWriter::new(MAGIC, 0).str(key).i64(*value),
            KvOp::Inc { key, by } => WireWriter::new(MAGIC, 1).str(key).i64(*by),
            KvOp::Del { key } => WireWriter::new(MAGIC, 2).str(key),
            KvOp::Get { key } => WireWriter::new(MAGIC, 3).str(key),
            KvOp::Nop { tag } => WireWriter::new(MAGIC, 4).u64(*tag),
        };
        Value::from(bytes.finish())
    }

    /// Decodes a broadcast value back into a command.
    ///
    /// Returns `None` for payloads that are not commands (e.g. raw test
    /// values).
    pub fn decode(v: &Value) -> Option<KvOp> {
        let (opcode, mut r) = WireReader::open(v.as_bytes(), MAGIC)?;
        let op = match opcode {
            0 => KvOp::Put { key: r.str()?, value: r.i64()? },
            1 => KvOp::Inc { key: r.str()?, by: r.i64()? },
            2 => KvOp::Del { key: r.str()? },
            3 => KvOp::Get { key: r.str()? },
            4 => KvOp::Nop { tag: r.u64()? },
            _ => return None,
        };
        r.end()?;
        Some(op)
    }

    /// A `Put` with a unique tag folded into the key-value pair, keeping
    /// payloads distinct when workloads repeat logical writes.
    pub fn tagged_put(key: impl Into<String>, value: i64) -> KvOp {
        KvOp::Put { key: key.into(), value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for op in [
            KvOp::Put { key: "a".into(), value: -3 },
            KvOp::Inc { key: "b".into(), by: 7 },
            KvOp::Del { key: "c".into() },
            KvOp::Get { key: "d".into() },
            KvOp::Nop { tag: 9 },
        ] {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn non_command_payload_decodes_to_none() {
        assert_eq!(KvOp::decode(&Value::from_u64(5)), None);
    }

    #[test]
    fn distinct_ops_have_distinct_payloads() {
        let a = KvOp::Put { key: "x".into(), value: 1 }.encode();
        let b = KvOp::Put { key: "x".into(), value: 2 }.encode();
        assert_ne!(a, b);
    }
}
