//! The key-value command language carried inside broadcast values.

use gcs_model::Value;
use serde::{Deserialize, Serialize};

/// A key-value store command.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum KvOp {
    /// Set `key` to `value`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: i64,
    },
    /// Add `by` to `key` (missing keys start at 0).
    Inc {
        /// The key.
        key: String,
        /// The increment (may be negative).
        by: i64,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: String,
    },
    /// Read `key` (used by the atomic-memory variant, where reads are
    /// serialized through the broadcast as well).
    Get {
        /// The key.
        key: String,
    },
    /// An opaque marker making otherwise-identical commands unique, so
    /// the encoded `Value` payloads stay distinct for the trace checkers.
    Nop {
        /// Uniquifier.
        tag: u64,
    },
}

impl KvOp {
    /// Encodes the command into an opaque broadcast value.
    pub fn encode(&self) -> Value {
        Value::from(serde_json::to_vec(self).expect("KvOp serializes"))
    }

    /// Decodes a broadcast value back into a command.
    ///
    /// Returns `None` for payloads that are not commands (e.g. raw test
    /// values).
    pub fn decode(v: &Value) -> Option<KvOp> {
        serde_json::from_slice(v.as_bytes()).ok()
    }

    /// A `Put` with a unique tag folded into the key-value pair, keeping
    /// payloads distinct when workloads repeat logical writes.
    pub fn tagged_put(key: impl Into<String>, value: i64) -> KvOp {
        KvOp::Put { key: key.into(), value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for op in [
            KvOp::Put { key: "a".into(), value: -3 },
            KvOp::Inc { key: "b".into(), by: 7 },
            KvOp::Del { key: "c".into() },
            KvOp::Get { key: "d".into() },
            KvOp::Nop { tag: 9 },
        ] {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn non_command_payload_decodes_to_none() {
        assert_eq!(KvOp::decode(&Value::from_u64(5)), None);
    }

    #[test]
    fn distinct_ops_have_distinct_payloads() {
        let a = KvOp::Put { key: "x".into(), value: 1 }.encode();
        let b = KvOp::Put { key: "x".into(), value: 2 }.encode();
        assert_ne!(a, b);
    }
}
