//! A fault-tolerant distributed lock service over totally ordered
//! broadcast — the classic state-machine-replication example after
//! replicated memory: because every replica sees the same request order,
//! all replicas agree on the lock holder and on the FIFO wait queue
//! without any further coordination.
//!
//! Requests (`acquire`/`release`) are broadcast through TO; each replica
//! applies them to its [`LockTable`]. Grants are deterministic: a replica
//! *knows* locally whether its processor holds a lock, and fairness is
//! exactly the order the TO service assigned.

use crate::rsm::StateMachine;
use crate::wire::{WireReader, WireWriter};
use gcs_model::{ProcId, Value};
use std::collections::{BTreeMap, VecDeque};

/// A lock request, broadcast through the TO service.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LockOp {
    /// Request the named lock for a processor; queues FIFO if held.
    Acquire {
        /// Lock name.
        name: String,
        /// Requesting processor (its id number).
        who: u32,
        /// Request tag, to keep payloads unique and correlate grants.
        tag: u64,
    },
    /// Release the named lock (only the holder's release has effect).
    Release {
        /// Lock name.
        name: String,
        /// Releasing processor.
        who: u32,
    },
}

/// Magic prefix distinguishing encoded lock requests from other payloads.
const MAGIC: [u8; 2] = *b"Lk";

impl LockOp {
    /// Encodes for broadcast.
    pub fn encode(&self) -> Value {
        let bytes = match self {
            LockOp::Acquire { name, who, tag } => {
                WireWriter::new(MAGIC, 0).str(name).u32(*who).u64(*tag)
            }
            LockOp::Release { name, who } => WireWriter::new(MAGIC, 1).str(name).u32(*who),
        };
        Value::from(bytes.finish())
    }

    /// Decodes a broadcast payload.
    pub fn decode(v: &Value) -> Option<LockOp> {
        let (opcode, mut r) = WireReader::open(v.as_bytes(), MAGIC)?;
        let op = match opcode {
            0 => LockOp::Acquire { name: r.str()?, who: r.u32()?, tag: r.u64()? },
            1 => LockOp::Release { name: r.str()?, who: r.u32()? },
            _ => return None,
        };
        r.end()?;
        Some(op)
    }
}

/// A grant event produced when a lock changes hands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Grant {
    /// Lock name.
    pub name: String,
    /// New holder.
    pub holder: ProcId,
    /// The tag from the acquire request.
    pub tag: u64,
}

#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct LockState {
    holder: Option<(ProcId, u64)>,
    waiters: VecDeque<(ProcId, u64)>,
}

/// The replicated lock table.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LockTable {
    locks: BTreeMap<String, LockState>,
    grants: Vec<Grant>,
}

impl LockTable {
    /// The current holder of `name`, if any.
    pub fn holder(&self, name: &str) -> Option<ProcId> {
        self.locks.get(name).and_then(|l| l.holder.map(|(p, _)| p))
    }

    /// The FIFO wait queue of `name`.
    pub fn waiters(&self, name: &str) -> Vec<ProcId> {
        self.locks
            .get(name)
            .map(|l| l.waiters.iter().map(|(p, _)| *p).collect())
            .unwrap_or_default()
    }

    /// Every grant ever issued, in service order — identical at every
    /// replica that applied the same prefix.
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }

    fn apply_op(&mut self, op: &LockOp) -> Option<Grant> {
        match op {
            LockOp::Acquire { name, who, tag } => {
                let lock = self.locks.entry(name.clone()).or_default();
                let req = (ProcId(*who), *tag);
                if lock.holder.is_none() {
                    lock.holder = Some(req);
                    let g = Grant { name: name.clone(), holder: req.0, tag: req.1 };
                    self.grants.push(g.clone());
                    Some(g)
                } else {
                    lock.waiters.push_back(req);
                    None
                }
            }
            LockOp::Release { name, who } => {
                let lock = self.locks.entry(name.clone()).or_default();
                if lock.holder.map(|(p, _)| p) != Some(ProcId(*who)) {
                    return None; // stale or malicious release: ignored
                }
                lock.holder = lock.waiters.pop_front();
                lock.holder.map(|(p, tag)| {
                    let g = Grant { name: name.clone(), holder: p, tag };
                    self.grants.push(g.clone());
                    g
                })
            }
        }
    }
}

impl StateMachine for LockTable {
    type Output = Grant;

    fn apply(&mut self, payload: &Value) -> Option<Grant> {
        let op = LockOp::decode(payload)?;
        self.apply_op(&op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsm::{replay_and_check, Replica};

    fn acq(name: &str, who: u32, tag: u64) -> Value {
        LockOp::Acquire { name: name.into(), who, tag }.encode()
    }
    fn rel(name: &str, who: u32) -> Value {
        LockOp::Release { name: name.into(), who }.encode()
    }

    #[test]
    fn fifo_handoff() {
        let mut t = LockTable::default();
        t.apply(&acq("m", 0, 1));
        t.apply(&acq("m", 1, 2));
        t.apply(&acq("m", 2, 3));
        assert_eq!(t.holder("m"), Some(ProcId(0)));
        assert_eq!(t.waiters("m"), vec![ProcId(1), ProcId(2)]);
        t.apply(&rel("m", 0));
        assert_eq!(t.holder("m"), Some(ProcId(1)));
        t.apply(&rel("m", 1));
        assert_eq!(t.holder("m"), Some(ProcId(2)));
        t.apply(&rel("m", 2));
        assert_eq!(t.holder("m"), None);
        let holders: Vec<ProcId> = t.grants().iter().map(|g| g.holder).collect();
        assert_eq!(holders, vec![ProcId(0), ProcId(1), ProcId(2)]);
    }

    #[test]
    fn stale_release_is_ignored() {
        let mut t = LockTable::default();
        t.apply(&acq("m", 0, 1));
        t.apply(&rel("m", 5)); // not the holder
        assert_eq!(t.holder("m"), Some(ProcId(0)));
        t.apply(&rel("m", 0));
        t.apply(&rel("m", 0)); // double release
        assert_eq!(t.holder("m"), None);
        assert_eq!(t.grants().len(), 1);
    }

    #[test]
    fn independent_locks_do_not_interact() {
        let mut t = LockTable::default();
        t.apply(&acq("a", 0, 1));
        t.apply(&acq("b", 1, 2));
        assert_eq!(t.holder("a"), Some(ProcId(0)));
        assert_eq!(t.holder("b"), Some(ProcId(1)));
    }

    #[test]
    fn replicas_agree_on_grants() {
        let ops = vec![acq("m", 0, 1), acq("m", 1, 2), rel("m", 0), acq("n", 2, 3), rel("m", 1)];
        let replicas = replay_and_check(LockTable::default(), &[ops.clone(), ops[..3].to_vec()])
            .expect("consistent");
        assert_eq!(replicas[0].state().grants().len(), 3);
        assert_eq!(replicas[1].state().grants().len(), 2);
        // Common prefix of grants agrees.
        assert_eq!(&replicas[0].state().grants()[..2], replicas[1].state().grants());
    }

    /// Over the real stack: acquires from all three processors; the
    /// grants come back identical everywhere, in one FIFO order.
    #[test]
    fn lock_service_over_the_stack() {
        use gcs_vsimpl::{Stack, StackConfig};
        let mut stack = Stack::new(StackConfig::standard(3, 5, 61));
        let pi = stack.config().pi;
        let t0 = 4 * pi;
        stack.schedule_value(t0, ProcId(0), acq("m", 0, 1));
        stack.schedule_value(t0 + 10, ProcId(1), acq("m", 1, 2));
        stack.schedule_value(t0 + 20, ProcId(2), acq("m", 2, 3));
        stack.schedule_value(t0 + 200, ProcId(0), rel("m", 0));
        stack.run_until(t0 + 60 * pi);
        let mut tables = Vec::new();
        for i in 0..3 {
            let mut r = Replica::new(LockTable::default());
            for (_, a) in stack.delivered(ProcId(i)) {
                r.apply_payload(a);
            }
            tables.push(r);
        }
        for t in &tables {
            assert_eq!(t.applied(), 4, "all four ops must be delivered");
        }
        let g0 = tables[0].state().grants().to_vec();
        assert_eq!(g0.len(), 2, "initial grant plus one handoff");
        for t in &tables[1..] {
            assert_eq!(t.state().grants(), &g0[..], "grant histories diverge");
        }
    }
}
