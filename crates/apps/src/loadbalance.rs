//! View-aware work partitioning — the usage pattern of the follow-on
//! work the paper cites (dynamic load balancing \[24\] and load-balanced
//! replicated data \[27\]): each member of the current view takes
//! ownership of a deterministic share of a key space, recomputed locally
//! whenever the view changes, with no extra coordination.
//!
//! Ownership uses rendezvous (highest-random-weight) hashing, so a
//! membership change only moves the keys owned by departed members —
//! members that stay keep their shares, which is what makes view-driven
//! rebalancing cheap.
//!
//! Safety note (the partitionable caveat): during a partition, two
//! concurrent views both believe they own the whole key space, so
//! ownership gives *at-least-one* responsibility, not mutual exclusion.
//! For exclusive ownership, restrict work to primary views — exactly the
//! quorum condition the `VStoTO` algorithm uses; [`Partitioner::any_view`]
//! takes that choice as a flag.

use gcs_model::{ProcId, QuorumSystem, View};
use std::sync::Arc;

/// A deterministic work partitioner over group views.
#[derive(Clone)]
pub struct Partitioner {
    /// Restrict ownership to primary (quorum-containing) views.
    primary_only: bool,
    quorums: Option<Arc<dyn QuorumSystem>>,
}

impl Partitioner {
    /// A partitioner that assigns work in every view (at-least-one
    /// ownership across concurrent views).
    pub fn any_view() -> Self {
        Partitioner { primary_only: false, quorums: None }
    }

    /// A partitioner that assigns work only in primary views (exclusive
    /// ownership, since primary views cannot be concurrent).
    pub fn primary_only(quorums: Arc<dyn QuorumSystem>) -> Self {
        Partitioner { primary_only: true, quorums: Some(quorums) }
    }

    /// The member of `view` that owns `key`, or `None` when this view is
    /// not allowed to own anything (non-primary under
    /// [`Partitioner::primary_only`]) or is empty.
    pub fn owner(&self, view: &View, key: &str) -> Option<ProcId> {
        if self.primary_only {
            let q = self.quorums.as_ref().expect("primary_only has quorums");
            if !q.is_quorum(&view.set) {
                return None;
            }
        }
        view.set.iter().copied().max_by_key(|p| weight(*p, key))
    }

    /// Whether processor `p` in `view` should handle `key`.
    pub fn owns(&self, view: &View, p: ProcId, key: &str) -> bool {
        self.owner(view, key) == Some(p)
    }

    /// The fraction (out of `sample` synthetic keys) owned by each member.
    pub fn shares(&self, view: &View, sample: usize) -> Vec<(ProcId, usize)> {
        let mut counts: std::collections::BTreeMap<ProcId, usize> =
            view.set.iter().map(|&p| (p, 0)).collect();
        for i in 0..sample {
            if let Some(p) = self.owner(view, &format!("key-{i}")) {
                *counts.get_mut(&p).expect("owner is a member") += 1;
            }
        }
        counts.into_iter().collect()
    }
}

/// Rendezvous weight: a splittable 64-bit hash of (processor, key).
fn weight(p: ProcId, key: &str) -> u64 {
    // FNV-1a over the key, then a splitmix64 finalization with the
    // processor id folded in. Stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut z = h ^ (u64::from(p.0).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::{Majority, ViewId};
    use std::collections::BTreeSet;

    fn view(ids: &[u32]) -> View {
        View::new(ViewId::new(1, ProcId(ids[0])), ids.iter().map(|&i| ProcId(i)).collect())
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        let part = Partitioner::any_view();
        let v = view(&[0, 1, 2]);
        for i in 0..50 {
            let key = format!("k{i}");
            let a = part.owner(&v, &key).expect("some owner");
            let b = part.owner(&v, &key).expect("some owner");
            assert_eq!(a, b);
            assert!(v.contains(a));
        }
    }

    #[test]
    fn shares_are_roughly_balanced() {
        let part = Partitioner::any_view();
        let v = view(&[0, 1, 2, 3]);
        let shares = part.shares(&v, 2_000);
        for (p, c) in &shares {
            assert!((300..=700).contains(c), "{p} owns {c}/2000 — rendezvous hash badly skewed");
        }
    }

    #[test]
    fn members_that_stay_keep_their_keys() {
        // Remove p3: only p3's keys may move.
        let part = Partitioner::any_view();
        let before = view(&[0, 1, 2, 3]);
        let after = view(&[0, 1, 2]);
        let mut moved = 0;
        for i in 0..500 {
            let key = format!("k{i}");
            let ob = part.owner(&before, &key).expect("owner");
            let oa = part.owner(&after, &key).expect("owner");
            if ob != oa {
                assert_eq!(ob, ProcId(3), "key moved from a surviving member");
                moved += 1;
            }
        }
        assert!(moved > 50, "p3 owned almost nothing before removal?");
    }

    #[test]
    fn primary_only_blocks_minority_views() {
        let part = Partitioner::primary_only(std::sync::Arc::new(Majority::new(5)));
        let majority = view(&[0, 1, 2]);
        let minority = view(&[3, 4]);
        assert!(part.owner(&majority, "k").is_some());
        assert!(part.owner(&minority, "k").is_none());
        // Exclusive: disjoint primary views cannot coexist under a
        // pairwise-intersecting quorum system, so any owner is unique.
        let disjoint: BTreeSet<_> = majority.set.intersection(&minority.set).collect();
        assert!(disjoint.is_empty());
    }

    #[test]
    fn concurrent_views_both_serve_in_any_view_mode() {
        let part = Partitioner::any_view();
        let left = view(&[0, 1]);
        let right = view(&[2, 3]);
        // Both sides own every key somewhere (at-least-one ownership).
        for i in 0..20 {
            let key = format!("k{i}");
            assert!(part.owner(&left, &key).is_some());
            assert!(part.owner(&right, &key).is_some());
        }
    }
}
