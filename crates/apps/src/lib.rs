//! Applications over the totally ordered broadcast service.
//!
//! The paper motivates `TO` as the foundation of the *replicated state
//! machine* approach (Section 3, footnote 3): each processor keeps a
//! replica; updates go through the totally ordered broadcast; replicas
//! apply delivered updates in the common order. This crate provides:
//!
//! - [`rsm`] — a generic replicated-state-machine layer: any
//!   [`rsm::StateMachine`] replicated over a delivered command stream,
//!   with convergence checking;
//! - [`ops`] — a serializable key-value command language (the commands
//!   ride inside opaque [`gcs_model::Value`] payloads);
//! - [`seqmem`] — the sequentially consistent memory of footnote 3
//!   (local reads, writes through TO) and its atomic-memory variant
//!   (all operations through TO);
//! - [`workload`] — deterministic workload generators (uniform, bursty,
//!   skewed senders) producing unique values, as the trace checkers
//!   require;
//! - [`loadbalance`] — view-aware work partitioning (the usage pattern of
//!   the paper's follow-on load-balancing work), with primary-only
//!   exclusive ownership as an option;
//! - [`lock`] — a fault-tolerant FIFO lock service, the classic
//!   state-machine-replication example after replicated memory;
//! - [`kv`] — the sharded key-value store (`Put`/`Get`/`Cas`) the
//!   multi-group deployment runs as its application workload, with a
//!   per-key consistency checker over replica delivered streams.
//!
//! # Example
//!
//! ```
//! use gcs_apps::ops::KvOp;
//! use gcs_apps::rsm::{Replica, StateMachine};
//! use gcs_apps::seqmem::KvStore;
//!
//! let mut replica = Replica::new(KvStore::default());
//! replica.apply_payload(&KvOp::Put { key: "x".into(), value: 3 }.encode());
//! replica.apply_payload(&KvOp::Inc { key: "x".into(), by: 4 }.encode());
//! assert_eq!(replica.state().get("x"), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kv;
pub mod loadbalance;
pub mod lock;
pub mod ops;
pub mod rsm;
pub mod seqmem;
mod wire;
pub mod workload;

pub use kv::{check_per_key_linearizable, KvCmd, KvOutcome, KvShardStore};
pub use loadbalance::Partitioner;
pub use lock::{LockOp, LockTable};
pub use ops::KvOp;
pub use rsm::{Replica, StateMachine};
pub use seqmem::{AtomicMemory, KvStore, SeqMemory};
pub use workload::{Workload, WorkloadKind};
