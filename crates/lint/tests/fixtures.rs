//! Fixture-based self-tests: every lint must fire on its known-bad
//! fixture and stay silent on its known-good one, the suppression
//! framework must report missing reasons and unused allows, and — the
//! meta-test — the current workspace must scan clean.

use gcs_lint::scan::SourceFile;
use gcs_lint::{lint_source, lints, Finding};
use std::path::Path;

/// Reads a fixture and presents it to the linter under `as_path`, which
/// is what decides lint applicability (the fixtures live under `tests/`
/// and are never scanned by the workspace walker).
fn parse_fixture(name: &str, as_path: &str) -> SourceFile {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let content =
        std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    SourceFile::parse(as_path, &content)
}

fn lints_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = findings.iter().map(|f| f.lint).collect();
    ids.sort();
    ids.dedup();
    ids
}

#[test]
fn determinism_fires_on_bad_fixture() {
    let src = parse_fixture("determinism_bad.rs", "crates/sim/src/fixture.rs");
    let findings = lint_source(&src);
    assert_eq!(lints_fired(&findings), vec![gcs_lint::DETERMINISM], "{findings:?}");
    // `use HashMap`, `Instant::now()`, and two `HashMap` mentions.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn determinism_is_silent_on_good_fixture() {
    let src = parse_fixture("determinism_good.rs", "crates/sim/src/fixture.rs");
    let findings = lint_source(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn determinism_does_not_apply_outside_deterministic_crates() {
    let src = parse_fixture("determinism_bad.rs", "crates/obs/src/fixture.rs");
    let findings = lint_source(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_path_fires_on_bad_fixture() {
    let src = parse_fixture("panic_path_bad.rs", "crates/net/src/transport.rs");
    let findings = lint_source(&src);
    assert_eq!(lints_fired(&findings), vec![gcs_lint::PANIC_PATH], "{findings:?}");
    // `.unwrap()`, `q[0]`, and `panic!`.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn panic_path_is_silent_on_good_fixture() {
    let src = parse_fixture("panic_path_good.rs", "crates/net/src/transport.rs");
    let findings = lint_source(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_path_does_not_apply_off_daemon_files() {
    let src = parse_fixture("panic_path_bad.rs", "crates/net/src/codec.rs");
    let findings = lint_source(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn atomics_fires_on_bad_fixture() {
    let src = parse_fixture("atomics_bad.rs", "crates/anywhere/src/fixture.rs");
    let findings = lint_source(&src);
    assert_eq!(lints_fired(&findings), vec![gcs_lint::ATOMICS_ORDER], "{findings:?}");
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn atomics_is_silent_on_good_fixture() {
    let src = parse_fixture("atomics_good.rs", "crates/anywhere/src/fixture.rs");
    let findings = lint_source(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn mc_shim_fires_on_bad_fixture() {
    let src = parse_fixture("mc_shim_bad.rs", "crates/obs/src/trace.rs");
    let findings = lint_source(&src);
    assert_eq!(lints_fired(&findings), vec![gcs_lint::MC_SHIM], "{findings:?}");
    // `AtomicU64` (brace import), `std::sync::Mutex`, `std::thread`.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn mc_shim_is_silent_on_good_fixture() {
    let src = parse_fixture("mc_shim_good.rs", "crates/net/src/queue.rs");
    let findings = lint_source(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn mc_shim_does_not_apply_off_ported_files() {
    let src = parse_fixture("mc_shim_bad.rs", "crates/obs/src/monitor.rs");
    let findings = lint_source(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn reasonless_allow_is_reported_but_still_suppresses() {
    let src = parse_fixture("allow_missing_reason.rs", "crates/anywhere/src/fixture.rs");
    let findings = lint_source(&src);
    assert_eq!(lints_fired(&findings), vec![gcs_lint::BAD_ALLOW], "{findings:?}");
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn unused_allow_is_reported() {
    let src = parse_fixture("allow_unused.rs", "crates/anywhere/src/fixture.rs");
    let findings = lint_source(&src);
    assert_eq!(lints_fired(&findings), vec![gcs_lint::UNUSED_ALLOW], "{findings:?}");
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn spec_cov_catches_unregistered_invariant() {
    let src = parse_fixture("invariants_bad.rs", "crates/core/src/invariants.rs");
    let findings = lints::spec_cov::check_invariants(&src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("lemma_unregistered"), "{findings:?}");
}

#[test]
fn spec_cov_accepts_fully_registered_invariants() {
    let src = parse_fixture("invariants_good.rs", "crates/core/src/invariants.rs");
    let findings = lints::spec_cov::check_invariants(&src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn spec_cov_catches_missing_decode_arm() {
    let enum_src = parse_fixture("wire_enum.rs", "crates/vsimpl/src/wire.rs");
    let codec_src = parse_fixture("codec_bad.rs", "crates/net/src/codec.rs");
    let findings = lints::spec_cov::check_wire(&enum_src, "Wire", &codec_src, "put_wire", "wire");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("Wire::Token"), "{findings:?}");
    assert!(findings[0].message.contains("decoder"), "{findings:?}");
}

#[test]
fn spec_cov_accepts_total_codec() {
    let enum_src = parse_fixture("wire_enum.rs", "crates/vsimpl/src/wire.rs");
    let codec_src = parse_fixture("codec_good.rs", "crates/net/src/codec.rs");
    let findings = lints::spec_cov::check_wire(&enum_src, "Wire", &codec_src, "put_wire", "wire");
    assert!(findings.is_empty(), "{findings:?}");
}

/// The meta-test: the workspace this crate ships in must scan clean —
/// every suppression carries a reason and matches a real finding, and no
/// unannotated site survives.
#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = gcs_lint::run(root).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean, got:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 100, "suspiciously few files: {}", report.files_scanned);
}
