// Spec-coverage fixture: the message enum whose codec coverage the
// codec_bad/codec_good fixtures are checked against.
pub enum Wire {
    Probe,
    Call { viewid: u64 },
    Token(Box<u64>),
}
