// Spec-coverage fixture: lemma_unregistered is defined but missing from
// all_invariants().
pub fn lemma_registered() -> bool {
    true
}

pub fn lemma_unregistered() -> bool {
    true
}

pub fn corollary_also_registered() -> bool {
    true
}

pub fn all_invariants() -> Vec<(&'static str, fn() -> bool)> {
    vec![
        ("lemma_registered", lemma_registered),
        ("corollary_also_registered", corollary_also_registered),
    ]
}
