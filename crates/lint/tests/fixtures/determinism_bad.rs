// Known-bad fixture for the `determinism` lint: wall-clock reads and
// randomized-iteration containers in (what the test presents as) a
// digest-deterministic crate.
use std::collections::HashMap;
use std::time::Instant;

pub fn stamp() -> u64 {
    let _t = Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    m.len() as u64
}
