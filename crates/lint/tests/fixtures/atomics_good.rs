// Known-good fixture for the `atomics_order` lint: every justification
// form, plus a cmp::Ordering use that must not be mistaken for the
// atomic kind.
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn forms(c: &AtomicU64) -> u64 {
    let a = c.load(Ordering::Acquire); // ordering: Acquire pairs with the Release store in publish()
    // ordering: Relaxed — advisory counter, merged at quiescence.
    let b = c.fetch_add(1, Ordering::Relaxed);
    // ordering: Relaxed throughout — one annotation covers this tight
    // group of independent statistical counters.
    let d = c.fetch_add(2, Ordering::Relaxed);
    let e = c.fetch_add(3, Ordering::Relaxed);
    a + b + d + e
}

pub fn not_atomic(x: u64, y: u64) -> bool {
    matches!(x.cmp(&y), CmpOrdering::Less)
}
