// Spec-coverage fixture: every defined invariant is registered.
pub fn lemma_one() -> bool {
    true
}

pub fn corollary_two() -> bool {
    true
}

pub fn all_invariants() -> Vec<(&'static str, fn() -> bool)> {
    vec![("lemma_one", lemma_one), ("corollary_two", corollary_two)]
}
