// Known-bad fixture for the `atomics_order` lint: an Ordering:: use
// with no `ordering:` justification anywhere near it.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
