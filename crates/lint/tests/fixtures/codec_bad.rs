// Spec-coverage fixture: the encoder covers all three variants, but the
// decoder forgot Wire::Token — a runtime BadTag for a valid peer.
pub fn put_wire(w: &super::Wire, out: &mut Vec<u8>) {
    match w {
        super::Wire::Probe => out.push(0),
        super::Wire::Call { viewid } => out.push(*viewid as u8),
        super::Wire::Token(t) => out.push(**t as u8),
    }
}

pub fn wire(tag: u8) -> Option<super::Wire> {
    match tag {
        0 => Some(super::Wire::Probe),
        1 => Some(super::Wire::Call { viewid: 0 }),
        _ => None,
    }
}
