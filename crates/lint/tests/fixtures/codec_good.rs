// Spec-coverage fixture: encoder and decoder cover identical variant
// sets.
pub fn put_wire(w: &super::Wire, out: &mut Vec<u8>) {
    match w {
        super::Wire::Probe => out.push(0),
        super::Wire::Call { viewid } => out.push(*viewid as u8),
        super::Wire::Token(t) => out.push(**t as u8),
    }
}

pub fn wire(tag: u8) -> Option<super::Wire> {
    match tag {
        0 => Some(super::Wire::Probe),
        1 => Some(super::Wire::Call { viewid: 0 }),
        2 => Some(super::Wire::Token(Box::new(0))),
        _ => None,
    }
}
