// Known-bad fixture for the `mc_shim` lint: a "ported" module that
// reaches std::sync primitives directly — an atomic via a brace import,
// a Mutex via a full path, and a raw thread spawn. Each bypasses the
// Shims surface and is invisible to the model checker.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Bad {
    seq: AtomicU64,
    shard: std::sync::Mutex<Vec<u64>>,
}

impl Bad {
    pub fn bump(&self) -> u64 {
        // ordering: Relaxed — fixture counter, no edges claimed.
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    pub fn run() {
        let t = std::thread::spawn(|| ());
        let _ = t.join();
    }
}
