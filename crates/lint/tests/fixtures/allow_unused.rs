// Fixture: a well-formed suppression that matches no finding; it must
// be reported as unused_allow so stale annotations cannot accumulate.

// gcs-lint: allow(determinism, reason = "stale: the HashMap this once covered is long gone")
pub fn nothing_here() -> u64 {
    7
}
