// Known-good fixture for the `mc_shim` lint: the same structure on the
// Shims surface — atomics and locks are associated types, threads come
// from S::spawn, and only Arc and atomic::Ordering are taken from
// std::sync.
use gcs_mc::{AtomicU64Api, MutexApi, Shims, StdShims};
use std::sync::atomic::Ordering;
use std::sync::Arc;

type A64<S> = <S as Shims>::AtomicU64;

pub struct Good<S: Shims = StdShims> {
    seq: Arc<A64<S>>,
    shard: S::Mutex<Vec<u64>>,
}

impl<S: Shims> Good<S> {
    pub fn bump(&self) -> u64 {
        // ordering: Relaxed — fixture counter, no edges claimed.
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    pub fn run() {
        let t = S::spawn(|| ());
        t.join();
    }
}

#[cfg(test)]
mod tests {
    // Test modules are exempt: StdShims-typed tests may drive the
    // structure with real threads.
    #[test]
    fn real_threads_are_fine_here() {
        let t = std::thread::spawn(|| 7u64);
        let _ = t.join();
    }
}
