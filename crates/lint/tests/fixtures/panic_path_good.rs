// Known-good fixture for the `panic_path` lint: poison-recovering lock,
// .get() instead of indexing, and one annotated intentional panic.
use std::sync::{Mutex, PoisonError};

pub fn daemon(q: &[u8], m: &Mutex<Vec<u8>>) -> u8 {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    let first = q.first().copied().unwrap_or(0);
    drop(g);
    first
}

pub fn harness_accessor(slots: &[u8], i: usize) -> u8 {
    // gcs-lint: allow(panic_path, reason = "documented harness contract: out-of-range i is a test bug that must fail loudly")
    slots[i]
}

#[cfg(test)]
mod tests {
    // Test modules may unwrap freely.
    #[test]
    fn scratch() {
        let v = vec![1u8];
        assert_eq!(v.first().copied().unwrap(), v[0]);
    }
}
