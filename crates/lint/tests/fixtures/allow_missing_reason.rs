// Fixture: a suppression without the mandatory reason. The suppressed
// finding stays suppressed, but the allow itself becomes a bad_allow
// finding.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // gcs-lint: allow(atomics_order)
    c.fetch_add(1, Ordering::Relaxed)
}
