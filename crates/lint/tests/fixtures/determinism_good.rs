// Known-good fixture for the `determinism` lint: ordered containers and
// virtual time only. The string and comment below must NOT fire: the
// scanner masks literal interiors and comments.
use std::collections::BTreeMap;

pub fn stamp(virtual_now_ms: u64) -> u64 {
    // HashMap is fine to *mention* in a comment.
    let banner = "Instant::now and HashMap in a string are masked";
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    virtual_now_ms + m.len() as u64 + banner.len() as u64
}

#[cfg(test)]
mod tests {
    // Test modules are exempt even in deterministic crates.
    use std::collections::HashMap;

    #[test]
    fn scratch() {
        let mut m = HashMap::new();
        m.insert(1, 2);
    }
}
