// Known-bad fixture for the `panic_path` lint: panicking constructs on
// (what the test presents as) a daemon path of crates/net.
use std::sync::Mutex;

pub fn daemon(q: &[u8], m: &Mutex<Vec<u8>>) -> u8 {
    let g = m.lock().unwrap();
    let first = q[0];
    drop(g);
    if first == 255 {
        panic!("boom");
    }
    first
}
