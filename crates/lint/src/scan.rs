//! Line-aware lexical scanning of Rust source.
//!
//! The linter deliberately does **not** parse Rust (no `syn` — the
//! workspace builds offline against vendored stubs, and the lints only
//! need token-level facts). Instead, each file is split into lines with
//! three synchronized views:
//!
//! - `code`: the line with comments removed and the *interiors* of
//!   string/char literals masked to spaces (delimiters kept), so a
//!   pattern like `.unwrap()` inside a log message can never fire and
//!   byte columns still line up with the raw text;
//! - `comment`: the concatenated comment text of the line (doc and
//!   plain, line and block), where suppression directives and
//!   `ordering:` justifications live;
//! - `in_test`: whether the line sits inside a `#[cfg(test)] mod`
//!   block — test code is exempt from the daemon- and
//!   determinism-oriented lints.
//!
//! The lexer handles nested block comments, raw strings (`r"…"`,
//! `r#"…"#`, byte variants), multi-line strings, and the char-literal
//! vs. lifetime ambiguity (`'a'` vs. `<'a>`).

/// One source line in its three synchronized views.
#[derive(Debug)]
pub struct Line {
    /// The raw text (without the trailing newline).
    pub raw: String,
    /// Code view: comments stripped, literal interiors masked to spaces.
    pub code: String,
    /// Comment view: the text of every comment on this line.
    pub comment: String,
    /// Whether the comment text came from a doc comment (`///`, `//!`).
    /// Suppression directives in documentation (syntax examples) are
    /// not live directives.
    pub doc: bool,
    /// Whether this line is inside a `#[cfg(test)] mod … { … }` block.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in findings (workspace-relative when produced by
    /// the workspace walker).
    pub path: String,
    /// The lexed lines, in order.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    /// Inside `/* … */`; the payload is the nesting depth.
    Block(u32),
    /// Inside a `"…"` string (escapes honored; may span lines).
    Str,
    /// Inside a raw string with this many `#`s in its delimiter.
    RawStr(u32),
}

impl SourceFile {
    /// Lexes `content` into lines. `path` is only carried for reporting.
    pub fn parse(path: &str, content: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut state = State::Normal;
        for raw in content.split('\n') {
            let (code, comment, doc, next) = lex_line(raw, state);
            state = next;
            lines.push(Line { raw: raw.to_string(), code, comment, doc, in_test: false });
        }
        // Drop the phantom line after a trailing newline.
        if lines.last().is_some_and(|l| l.raw.is_empty()) && content.ends_with('\n') {
            lines.pop();
        }
        let mut f = SourceFile { path: path.to_string(), lines };
        f.mark_test_blocks();
        f
    }

    /// Marks every line inside a `#[cfg(test)] mod … { … }` block.
    fn mark_test_blocks(&mut self) {
        let mut i = 0;
        while i < self.lines.len() {
            if !self.lines[i].code.contains("#[cfg(test)]") {
                i += 1;
                continue;
            }
            // Find the `mod` item the attribute decorates (attributes and
            // blank lines may intervene), then brace-count its block.
            let mut j = i;
            let open = loop {
                if j >= self.lines.len() {
                    break None;
                }
                let code = &self.lines[j].code;
                if is_mod_item(code) {
                    match code.find('{') {
                        Some(pos) => break Some((j, pos)),
                        None => break None, // `mod tests;` — external file
                    }
                }
                j += 1;
                if j > i + 4 {
                    break None; // attribute decorates something else
                }
            };
            let Some((start, pos)) = open else {
                i += 1;
                continue;
            };
            let mut depth = 0i32;
            let mut line = start;
            let mut col = pos;
            'outer: while line < self.lines.len() {
                let code: Vec<char> = self.lines[line].code.chars().collect();
                while col < code.len() {
                    match code[col] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                    col += 1;
                }
                self.lines[line].in_test = true;
                line += 1;
                col = 0;
            }
            let last = line.min(self.lines.len() - 1);
            for l in &mut self.lines[i..=last] {
                l.in_test = true;
            }
            i = line + 1;
        }
    }
}

fn is_mod_item(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("mod ") || t.starts_with("pub mod ") || t.starts_with("pub(crate) mod ")
}

/// Lexes one line starting in `state`; returns
/// (code, comment, comment-is-doc, next state).
fn lex_line(raw: &str, mut state: State) -> (String, String, bool, State) {
    let b: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut doc = false;
    let mut i = 0;
    while i < b.len() {
        match state {
            State::Block(depth) => {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    state = State::Block(depth + 1);
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    state = if depth == 1 { State::Normal } else { State::Block(depth - 1) };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    comment.push(b[i]);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == '\\' {
                    code.push(' ');
                    if i + 1 < b.len() {
                        code.push(' ');
                    }
                    i += 2;
                } else if b[i] == '"' {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == '"' && closes_raw(&b, i + 1, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Normal => {
                let c = b[i];
                if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
                    // Line comment (incl. doc comments) to end of line.
                    if i + 2 < b.len() && (b[i + 2] == '/' || b[i + 2] == '!') {
                        doc = true;
                    }
                    comment.push_str(&raw_tail(&b, i + 2));
                    break;
                }
                if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    state = State::Block(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                // Raw / byte strings: r"…", r#"…"#, br"…", b"…".
                if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
                    if let Some((hashes, consumed)) = raw_open(&b, i) {
                        for k in 0..consumed {
                            code.push(b[i + k]);
                        }
                        i += consumed;
                        state = if hashes == u32::MAX { State::Str } else { State::RawStr(hashes) };
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime.
                    if i + 1 < b.len() && b[i + 1] == '\\' {
                        // Escaped char literal: mask to the closing quote.
                        code.push('\'');
                        let mut j = i + 2;
                        code.push(' ');
                        while j < b.len() && b[j] != '\'' {
                            code.push(' ');
                            j += 1;
                        }
                        if j < b.len() {
                            code.push('\'');
                            j += 1;
                        }
                        i = j;
                        continue;
                    }
                    if i + 2 < b.len() && b[i + 2] == '\'' {
                        // 'x' — plain char literal.
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                        continue;
                    }
                    // Lifetime (or label): keep as code.
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
        }
    }
    if state == State::Str {
        // A string continued across a newline keeps its state.
    }
    (code, comment, doc, state)
}

fn raw_tail(b: &[char], from: usize) -> String {
    b[from.min(b.len())..].iter().collect()
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// If position `i` opens a raw or byte string, returns
/// `(hash count, delimiter length)`; `hash count == u32::MAX` encodes a
/// plain `b"…"` byte string (same lexing as a normal string).
fn raw_open(b: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() {
            return None;
        }
        if b[j] == '"' {
            return Some((u32::MAX, j - i + 1));
        }
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        let mut hashes = 0u32;
        while j < b.len() && b[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == '"' {
            return Some((hashes, j - i + 1));
        }
    }
    None
}

fn closes_raw(b: &[char], from: usize, hashes: u32) -> bool {
    let n = hashes as usize;
    if from + n > b.len() {
        return false;
    }
    b[from..from + n].iter().all(|&c| c == '#')
}

// ---------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------

/// What an `allow` directive applies to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AllowTarget {
    /// The next line carrying code (or the directive's own line, when it
    /// trails code).
    Line(usize),
    /// The whole file (`allow-file`).
    File,
    /// No code line follows the directive (dangling at end of file).
    Dangling,
}

/// A parsed `gcs-lint: allow(…)` suppression.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The lint identifier being suppressed.
    pub lint: String,
    /// The mandatory justification; `None` is itself reported.
    pub reason: Option<String>,
    /// 0-based line the directive appears on.
    pub line: usize,
    /// What the directive suppresses.
    pub target: AllowTarget,
}

/// Extracts every suppression directive in the file.
///
/// Syntax, inside any comment:
///
/// ```text
/// // gcs-lint: allow(<lint-id>, reason = "<why>")
/// // gcs-lint: allow-file(<lint-id>, reason = "<why>")
/// ```
///
/// A trailing directive suppresses its own line; a directive on a
/// comment-only line suppresses the next line carrying code. Doc
/// comments (`///`, `//!`) are documentation, not directives — syntax
/// examples in rustdoc never suppress anything.
pub fn collect_allows(src: &SourceFile) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if line.doc {
            continue;
        }
        let mut rest = line.comment.as_str();
        while let Some(pos) = rest.find("gcs-lint:") {
            rest = &rest[pos + "gcs-lint:".len()..];
            let trimmed = rest.trim_start();
            let file_scope = trimmed.starts_with("allow-file");
            let keyword = if file_scope { "allow-file" } else { "allow" };
            if !trimmed.starts_with(keyword) {
                continue;
            }
            let body = trimmed[keyword.len()..].trim_start();
            // The lint id ends at the first `,` or `)`; the reason is a
            // quoted string and may itself contain parentheses, so it is
            // delimited by its quotes, not by the directive's `)`.
            let parsed = body.strip_prefix('(').and_then(|b| {
                let id_end = b.find([',', ')'])?;
                let id = b[..id_end].trim().to_string();
                let reason = if b.as_bytes()[id_end] == b',' {
                    parse_reason(&b[id_end + 1..])
                } else {
                    None
                };
                Some((id, reason))
            });
            let Some((id, reason)) = parsed else {
                // Malformed: record as reasonless so the driver reports it.
                out.push(Allow {
                    lint: "<malformed>".into(),
                    reason: None,
                    line: i,
                    target: AllowTarget::Line(i),
                });
                continue;
            };
            let target = if file_scope {
                AllowTarget::File
            } else if !line.code.trim().is_empty() {
                AllowTarget::Line(i)
            } else {
                src.lines[i + 1..]
                    .iter()
                    .position(|l| !l.code.trim().is_empty())
                    .map(|off| AllowTarget::Line(i + 1 + off))
                    .unwrap_or(AllowTarget::Dangling)
            };
            out.push(Allow { lint: id, reason, line: i, target });
        }
    }
    out
}

fn parse_reason(r: &str) -> Option<String> {
    let r = r.trim_start();
    let r = r.strip_prefix("reason")?.trim_start();
    let r = r.strip_prefix('=')?.trim_start();
    let r = r.strip_prefix('"')?;
    let end = r.find('"')?;
    let reason = r[..end].trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason.to_string())
    }
}

// ---------------------------------------------------------------------
// Pattern helpers shared by the lints
// ---------------------------------------------------------------------

/// Byte columns (0-based) of every word-bounded occurrence of `needle`
/// in `code`. "Word-bounded" means the characters immediately before and
/// after the match are not identifier characters, so `HashMap` does not
/// fire inside `MyHashMapLike`.
pub fn find_word(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        // Boundaries are only required on the sides where the needle
        // itself is an ident char: `.unwrap()` starts and ends with
        // punctuation and is self-delimiting on both sides.
        let needs_before = needle.starts_with(|c: char| c.is_alphanumeric() || c == '_');
        let needs_after = needle.ends_with(|c: char| c.is_alphanumeric() || c == '_');
        if (!needs_before || before_ok) && (!needs_after || after_ok) {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let src = SourceFile::parse(
            "t.rs",
            "let x = \"HashMap .unwrap()\"; // HashMap here\nlet c = 'a'; let s: &'static str = r#\"Instant::now\"#;\n",
        );
        assert_eq!(src.lines.len(), 2);
        assert!(!src.lines[0].code.contains("HashMap"));
        assert!(src.lines[0].comment.contains("HashMap here"));
        assert!(!src.lines[1].code.contains("Instant::now"));
        assert!(src.lines[1].code.contains("&'static str"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = SourceFile::parse("t.rs", "a /* x /* y */ still */ b\n/* open\nHashMap\n*/ c\n");
        assert!(src.lines[0].code.contains('a') && src.lines[0].code.contains('b'));
        assert!(!src.lines[0].code.contains("still"));
        assert!(!src.lines[2].code.contains("HashMap"));
        assert!(src.lines[2].comment.contains("HashMap"));
        assert!(src.lines[3].code.contains('c'));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = SourceFile::parse(
            "t.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n",
        );
        assert!(!src.lines[0].in_test);
        assert!(src.lines[3].in_test);
        assert!(!src.lines[5].in_test);
    }

    #[test]
    fn allows_parse_with_targets() {
        let text = "\
// gcs-lint: allow(determinism, reason = \"bounded scratch set\")
use std::collections::HashSet;
x(); // gcs-lint: allow(panic_path, reason = \"trailing\")
// gcs-lint: allow(atomics_order)
y();
";
        let src = SourceFile::parse("t.rs", text);
        let allows = collect_allows(&src);
        assert_eq!(allows.len(), 3);
        assert_eq!(allows[0].target, AllowTarget::Line(1));
        assert_eq!(allows[0].reason.as_deref(), Some("bounded scratch set"));
        assert_eq!(allows[1].target, AllowTarget::Line(2));
        assert_eq!(allows[2].reason, None);
        assert_eq!(allows[2].target, AllowTarget::Line(4));
    }

    #[test]
    fn reason_may_contain_parentheses() {
        let text = "\
// gcs-lint: allow(panic_path, reason = \"p.index() is bounded (see new())\")
x();
";
        let src = SourceFile::parse("t.rs", text);
        let allows = collect_allows(&src);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].lint, "panic_path");
        assert_eq!(allows[0].reason.as_deref(), Some("p.index() is bounded (see new())"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert_eq!(find_word("let m: HashMap<u8, u8>", "HashMap").len(), 1);
        assert!(find_word("struct MyHashMapLike;", "HashMap").is_empty());
        assert!(find_word("std::collections::HashMap", "HashMap").len() == 1);
        assert!(find_word("x.unwrap_or(0)", ".unwrap()").is_empty());
        // A needle starting with punctuation must still match after an
        // identifier character.
        assert_eq!(find_word("rx.recv().unwrap()", ".unwrap()").len(), 1);
        assert_eq!(find_word("guard.expect(\"msg\")", ".expect(").len(), 1);
    }

    #[test]
    fn doc_comment_directives_are_inert() {
        let text = "\
/// Example: `// gcs-lint: allow(determinism, reason = \"doc\")`
//! gcs-lint: allow(panic_path, reason = \"also doc\")
// gcs-lint: allow(atomics_order, reason = \"live\")
x();
";
        let src = SourceFile::parse("t.rs", text);
        let allows = collect_allows(&src);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].lint, "atomics_order");
    }
}
