//! The `gcs-lint` CLI: scan the workspace, print findings, exit nonzero
//! if any survive.
//!
//! ```text
//! gcs-lint [--root <dir>] [--json]
//!
//!   --root <dir>   workspace root to scan (default: current directory)
//!   --json         one JSON object per finding on stdout (machine-readable)
//! ```
//!
//! Human output is `file:line:col: deny(<lint>): message`, one finding
//! per line, with a trailing summary on stderr. Exit status: 0 clean,
//! 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("gcs-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: gcs-lint [--root <dir>] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gcs-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match gcs_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gcs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        if json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }
    if report.findings.is_empty() {
        eprintln!("gcs-lint: clean ({} files scanned)", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "gcs-lint: {} finding(s) in {} files scanned",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::from(1)
    }
}
