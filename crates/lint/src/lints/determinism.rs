//! `determinism` — forbid nondeterminism sources in the deterministic
//! crates.
//!
//! The simulation harness's headline guarantee is a bit-for-bit
//! reproducible FNV-1a run digest across worker counts and replays.
//! Everything that executes under the virtual clock — the executable
//! specs, the protocol implementation, the network simulator, and the
//! harness world — must therefore be free of wall-clock reads
//! (`Instant::now`, `SystemTime::now`), OS entropy (`thread_rng`), and
//! containers whose iteration order is randomized per process
//! (`HashMap`, `HashSet`; use `BTreeMap`/`BTreeSet`). One stray hash-map
//! iteration silently breaks replayability — exactly the class of
//! modeling gap hand proofs miss.
//!
//! Test modules (`#[cfg(test)]`) are exempt: they do not feed digests.

use crate::scan::{find_word, SourceFile};
use crate::Finding;

/// The crates whose execution feeds deterministic run digests.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/ioa/src/",
    "crates/model/src/",
    "crates/netsim/src/",
    "crates/sim/src/",
    "crates/vsimpl/src/",
];

/// Forbidden token → why it breaks determinism.
const FORBIDDEN: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read; deterministic code must take time from the virtual clock"),
    (
        "SystemTime::now",
        "wall-clock read; deterministic code must take time from the virtual clock",
    ),
    ("thread_rng", "OS-entropy RNG; deterministic code must use a seeded rng (e.g. ChaCha8)"),
    ("HashMap", "iteration order is randomized per process; use BTreeMap"),
    ("HashSet", "iteration order is randomized per process; use BTreeSet"),
];

/// Whether the lint applies to this workspace-relative path.
pub fn applies(path: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p))
}

/// Flags every forbidden token outside test modules.
pub fn check(src: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, why) in FORBIDDEN {
            for col in find_word(&line.code, needle) {
                out.push(Finding::new(
                    crate::DETERMINISM,
                    src,
                    i,
                    col,
                    format!("`{needle}` in a digest-deterministic crate: {why}"),
                ));
            }
        }
    }
    out
}
