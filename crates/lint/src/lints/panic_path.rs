//! `panic_path` — forbid panicking constructs in the long-running
//! daemon paths of `crates/net`.
//!
//! The transport's accept loop, per-peer writer threads, connection
//! readers, and the node runtime's event loop are the threads a deployed
//! node lives on. A panic there doesn't fail a request — it silently
//! kills a daemon thread and degrades the node (a dead writer looks
//! exactly like a partition). Flagged constructs: `.unwrap()`,
//! `.expect(…)`, `panic!`/`unreachable!`/`todo!`/`unimplemented!`, and
//! slice/collection indexing (`x[i]` panics out of bounds; prefer
//! `.get()`).
//!
//! Harness-facing APIs with a documented `# Panics` contract keep the
//! panic and carry an `allow(panic_path, reason = "…")` annotation
//! instead. Test modules are exempt.

use crate::scan::{find_word, SourceFile};
use crate::Finding;

/// The daemon-path files of `crates/net` this lint guards.
const DAEMON_FILES: &[&str] =
    &["crates/net/src/transport.rs", "crates/net/src/runtime.rs", "crates/net/src/cluster.rs"];

const FORBIDDEN: &[(&str, &str)] = &[
    (".unwrap()", "propagate the error or log-and-drop; a daemon thread must not die"),
    (".expect(", "propagate the error or log-and-drop; a daemon thread must not die"),
    ("panic!", "a daemon thread must not die; return an error or drop the event"),
    ("unreachable!", "a daemon thread must not die; return an error or drop the event"),
    ("todo!", "unfinished code must not ship on a daemon path"),
    ("unimplemented!", "unfinished code must not ship on a daemon path"),
];

/// Whether the lint applies to this workspace-relative path.
pub fn applies(path: &str) -> bool {
    DAEMON_FILES.contains(&path)
}

/// Flags panicking constructs and indexing outside test modules.
pub fn check(src: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, why) in FORBIDDEN {
            for col in find_word(&line.code, needle) {
                out.push(Finding::new(
                    crate::PANIC_PATH,
                    src,
                    i,
                    col,
                    format!("`{}` on a daemon path: {why}", needle.trim_end_matches('(')),
                ));
            }
        }
        for col in index_sites(&line.code) {
            out.push(Finding::new(
                crate::PANIC_PATH,
                src,
                i,
                col,
                "indexing can panic out of bounds on a daemon path; use .get() \
                 or annotate the bound"
                    .to_string(),
            ));
        }
    }
    out
}

/// Byte columns of indexing expressions: a `[` directly following an
/// identifier character, `)`, or `]`. Array types/literals (`[u8; 4]`),
/// attributes (`#[…]`), and macros (`vec![…]`) are preceded by other
/// characters and never match.
fn index_sites(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let p = bytes[i - 1];
        if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_heuristic_hits_and_misses() {
        assert_eq!(index_sites("self.slots[p.index()]"), vec![10]);
        assert_eq!(index_sites("f()[0] and m[&p]"), vec![3, 12]);
        assert!(index_sites("let a = [0u8; 4];").is_empty());
        assert!(index_sites("#[cfg(test)]").is_empty());
        assert!(index_sites("vec![1, 2]").is_empty());
        assert!(index_sites("fn f(x: &[u8]) {}").is_empty());
    }
}
