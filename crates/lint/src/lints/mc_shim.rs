//! `mc_shim` — gcs-mc-ported modules must stay on the shim surface.
//!
//! The structures the gcs-mc model checker certifies (the obs trace
//! ring, histogram core, sharded metrics registry, and the net send
//! queue) are generic over [`gcs_mc::Shims`]: in production they
//! compile to `std` primitives through zero-cost `StdShims` wrappers,
//! and under test the `McShims` implementation routes every visible
//! operation through the cooperative scheduler. That guarantee — *the
//! structure the checker explores is the structure that ships* — dies
//! silently the moment one of these files names a `std::sync` primitive
//! directly: the code still compiles, the models still pass, and the
//! un-interposed operation is invisible to both the interleaving
//! explorer and the happens-before checker.
//!
//! This lint pins the ported files to the shim surface. Allowed from
//! `std::sync`: `Arc` (pure refcounting, no blocking or ordering
//! decisions the checker needs to see) and `atomic::Ordering` (the
//! shim API takes the real enum). Everything else — atomic cells,
//! `Mutex`/`Condvar`/`RwLock`, `mpsc` channels, `std::thread` — must go
//! through the `Shims` associated types (`S::AtomicU64`, `S::Mutex`,
//! `S::Condvar`, `S::spawn`). Test modules are exempt: `StdShims`-typed
//! unit tests may drive the structure with real threads.
//!
//! See docs/CONCURRENCY.md for the porting recipe.

use crate::scan::{find_word, SourceFile};
use crate::Finding;

/// The gcs-mc-ported modules (workspace-relative paths). Grow this list
/// when porting a new structure — the mc models only certify files that
/// are also pinned here.
const PORTED: &[&str] = &[
    "crates/obs/src/trace.rs",
    "crates/obs/src/hist.rs",
    "crates/obs/src/metrics.rs",
    "crates/net/src/queue.rs",
];

/// `std::sync` names that bypass the shim layer, with the shim-surface
/// replacement to name in the message.
const FORBIDDEN_SYNC: &[(&str, &str)] = &[
    ("AtomicBool", "S::AtomicU64 (0/1) or a dedicated shim type"),
    ("AtomicU32", "S::AtomicU64"),
    ("AtomicU64", "S::AtomicU64"),
    ("AtomicUsize", "S::AtomicUsize"),
    ("AtomicI32", "S::AtomicI64"),
    ("AtomicI64", "S::AtomicI64"),
    ("AtomicIsize", "S::AtomicI64"),
    ("AtomicPtr", "a shim-visible cell"),
    ("Mutex", "S::Mutex"),
    ("Condvar", "S::Condvar"),
    ("RwLock", "S::Mutex (the shim surface has no RwLock)"),
    ("Barrier", "S::Condvar"),
    ("Once", "S::Mutex"),
    ("OnceLock", "S::Mutex"),
    ("LazyLock", "S::Mutex"),
    ("mpsc", "the shim-built queue (crates/net/src/queue.rs)"),
];

/// Whether the lint applies to this workspace-relative path.
pub fn applies(path: &str) -> bool {
    PORTED.contains(&path)
}

/// Flags every direct `std::sync` primitive or `std::thread` use
/// outside test modules of a ported file.
pub fn check(src: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        // A `std::sync::` path on the line puts every forbidden name on
        // it in scope of the lint — this catches both direct paths
        // (`std::sync::Mutex`) and brace imports
        // (`use std::sync::{Arc, Mutex}`,
        // `use std::sync::atomic::{AtomicU64, Ordering}`).
        if line.code.contains("std::sync::") {
            for (name, replacement) in FORBIDDEN_SYNC {
                for col in find_word(&line.code, name) {
                    out.push(Finding::new(
                        crate::MC_SHIM,
                        src,
                        i,
                        col,
                        format!(
                            "`{name}` reached through `std::sync` in a gcs-mc-ported \
                             module; use {replacement} so the model checker can \
                             interpose (see docs/CONCURRENCY.md)"
                        ),
                    ));
                }
            }
        }
        for col in find_word(&line.code, "std::thread") {
            out.push(Finding::new(
                crate::MC_SHIM,
                src,
                i,
                col,
                "`std::thread` in a gcs-mc-ported module; spawn through `S::spawn` \
                 so the scheduler owns the thread (see docs/CONCURRENCY.md)"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_only_to_ported_files() {
        assert!(applies("crates/obs/src/trace.rs"));
        assert!(applies("crates/net/src/queue.rs"));
        assert!(!applies("crates/mc/src/shim_std.rs"));
        assert!(!applies("crates/net/src/transport.rs"));
    }

    #[test]
    fn arc_and_ordering_stay_allowed() {
        let src = SourceFile::parse(
            "crates/obs/src/trace.rs",
            "use std::sync::atomic::Ordering;\nuse std::sync::Arc;\n",
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn brace_imports_are_caught() {
        let src = SourceFile::parse("crates/obs/src/trace.rs", "use std::sync::{Arc, Mutex};\n");
        let f = check(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`Mutex`"), "{f:?}");
    }

    #[test]
    fn shim_associated_types_do_not_fire() {
        let src = SourceFile::parse(
            "crates/obs/src/trace.rs",
            "struct T<S: Shims> { shards: Vec<S::Mutex<u64>>, cv: S::Condvar }\n",
        );
        assert!(check(&src).is_empty());
    }
}
