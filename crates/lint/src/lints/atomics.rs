//! `atomics_order` — every atomic `Ordering::` use must carry a
//! justification.
//!
//! Memory-ordering bugs don't reproduce on x86 and don't show up in unit
//! tests; the only scalable defense is forcing the author to state the
//! intended happens-before edge (or its absence) *at the use site*,
//! where a reviewer — and the nightly ThreadSanitizer stage — can check
//! the claim. A use is justified by a comment containing `ordering:`
//! either trailing on the same line or within the contiguous run of
//! non-blank lines directly above it — one annotation covers a tight
//! group of consecutive atomic operations; a blank line ends its scope:
//!
//! ```text
//! // ordering: Release pairs with the Acquire in recorded(); a reader
//! // that observes seq n also observes every write before allocation n.
//! let seq = self.inner.seq.fetch_add(1, Ordering::AcqRel);
//! ```
//!
//! The archetypal hazard this guards: a Relaxed load/store pair that a
//! consumer-side ordering dependency silently relies on (the trace
//! ring's global `seq` vs. `snapshot_since` cursors). Relaxed is fine —
//! common, even, for counters merged at quiescence — but it must say so.
//! Test modules are exempt.

use crate::scan::SourceFile;
use crate::Finding;

const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The marker a justification comment must contain.
pub const JUSTIFICATION: &str = "ordering:";

/// Flags every unjustified atomic `Ordering::` use outside test modules.
pub fn check(src: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (col, variant) in atomic_uses(&line.code) {
            if !justified(src, i) {
                out.push(Finding::new(
                    crate::ATOMICS_ORDER,
                    src,
                    i,
                    col,
                    format!(
                        "`Ordering::{variant}` lacks a justification; state the intended \
                         happens-before edge in an `// ordering: …` comment on this line \
                         or directly above"
                    ),
                ));
            }
        }
    }
    out
}

/// `(column, variant)` of every atomic ordering mention in a code line.
/// `cmp::Ordering` never collides: its variants are `Less`/`Equal`/
/// `Greater`, not the atomic set.
fn atomic_uses(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("Ordering::") {
        let at = from + pos;
        let rest = &code[at + "Ordering::".len()..];
        if let Some(v) = VARIANTS.iter().find(|v| {
            rest.starts_with(**v)
                && !rest[v.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
        }) {
            out.push((at, *v));
        }
        from = at + "Ordering::".len();
    }
    out
}

/// How far above an atomic use a justification comment may sit. Bounds
/// the paragraph walk so an `ordering:` comment cannot accidentally
/// cover a whole function.
const PARAGRAPH_REACH: usize = 8;

/// Whether line `i` has an `ordering:` justification: trailing on the
/// line itself, or in a comment within the contiguous run of non-blank
/// lines directly above it (so one annotation covers a tight group of
/// consecutive atomic operations, e.g. a histogram's counter batch). A
/// blank line ends the paragraph and the annotation's scope.
fn justified(src: &SourceFile, i: usize) -> bool {
    if src.lines[i].comment.contains(JUSTIFICATION) {
        return true;
    }
    let mut j = i;
    while j > 0 && i - j < PARAGRAPH_REACH {
        j -= 1;
        let l = &src.lines[j];
        if l.raw.trim().is_empty() {
            break;
        }
        if l.comment.contains(JUSTIFICATION) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ordering_is_ignored() {
        assert!(atomic_uses("a.cmp(&b) == Ordering::Less").is_empty());
        assert_eq!(atomic_uses("x.load(Ordering::Relaxed)"), vec![(7, "Relaxed")]);
        assert_eq!(atomic_uses("atomic::Ordering::SeqCst"), vec![(8, "SeqCst")]);
    }
}
