//! The five project lints. Each module exposes `check(&SourceFile)`
//! (or `check_workspace` for the cross-file one) returning raw findings;
//! suppression resolution happens in [`crate::apply_allows`].

pub mod atomics;
pub mod determinism;
pub mod mc_shim;
pub mod panic_path;
pub mod spec_cov;
