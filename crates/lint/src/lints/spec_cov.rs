//! `spec_coverage` — the executable specification must stay fully
//! wired.
//!
//! Two cross-checks, both over facts a lexical scan can establish:
//!
//! 1. **Invariant registration.** Every invariant predicate defined in
//!    `crates/core/src/invariants.rs` (`fn lemma_*` / `fn corollary_*`)
//!    must be referenced from `all_invariants()`. An invariant written
//!    but never registered is a proof obligation that quietly stopped
//!    being discharged — the checker suite reports green while a lemma
//!    goes unchecked.
//! 2. **Wire codec totality.** The `Wire` enum (declared in
//!    `crates/vsimpl/src/wire.rs`) must have every variant covered by
//!    both the encoder (`put_wire`) and the decoder (`fn wire`) in
//!    `crates/net/src/codec.rs`. Rust's match exhaustiveness covers the
//!    encoder only; a forgotten *decode* arm is a runtime `BadTag` for a
//!    perfectly valid peer.
//!
//! These findings are not suppressible: a missing registration has no
//! meaningful "allow" — fix the table.

use crate::scan::{find_word, SourceFile};
use crate::Finding;
use std::path::Path;

/// Runs both cross-checks against their workspace locations. A missing
/// or moved file is itself a finding, so a refactor cannot silently
/// disable the check.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    match load(root, "crates/core/src/invariants.rs") {
        Ok(src) => out.extend(check_invariants(&src)),
        Err(f) => out.push(f),
    }
    match (load(root, "crates/vsimpl/src/wire.rs"), load(root, "crates/net/src/codec.rs")) {
        (Ok(enum_src), Ok(codec_src)) => {
            out.extend(check_wire(&enum_src, "Wire", &codec_src, "put_wire", "wire"))
        }
        (e1, e2) => out.extend([e1.err(), e2.err()].into_iter().flatten()),
    }
    out
}

fn load(root: &Path, rel: &str) -> Result<SourceFile, Finding> {
    let path = root.join(rel);
    match std::fs::read_to_string(&path) {
        Ok(content) => Ok(SourceFile::parse(rel, &content)),
        Err(e) => Err(Finding {
            lint: crate::SPEC_COVERAGE,
            file: rel.to_string(),
            line: 1,
            col: 1,
            message: format!(
                "expected file is unreadable ({e}); if the layout moved, update the \
                 spec_cov paths in crates/lint"
            ),
        }),
    }
}

/// Checks that every `fn lemma_*` / `fn corollary_*` defined in the file
/// is referenced inside the body of `all_invariants()`.
pub fn check_invariants(src: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let defs = fn_defs(src, &["lemma_", "corollary_"]);
    let Some(reg_line) = find_fn(src, "all_invariants") else {
        out.push(Finding::new(
            crate::SPEC_COVERAGE,
            src,
            0,
            0,
            "no `fn all_invariants` found; the invariant registry is gone".to_string(),
        ));
        return out;
    };
    let Some((start, end)) = body_range(src, reg_line) else {
        return out;
    };
    let mut registered = Vec::new();
    for line in &src.lines[start..=end] {
        registered.extend(idents(&line.code));
    }
    for (name, line0) in defs {
        if !registered.iter().any(|r| r == &name) {
            out.push(Finding::new(
                crate::SPEC_COVERAGE,
                src,
                line0,
                0,
                format!(
                    "invariant `{name}` is defined but never registered in \
                     all_invariants(); the checker suite silently skips it"
                ),
            ));
        }
    }
    out
}

/// Checks that the declared variants of `enum_name`, the `Variant::`
/// references inside `encode_fn`, and those inside `decode_fn` are the
/// same set.
pub fn check_wire(
    enum_src: &SourceFile,
    enum_name: &str,
    codec_src: &SourceFile,
    encode_fn: &str,
    decode_fn: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((variants, _)) = enum_variants(enum_src, enum_name) else {
        out.push(Finding::new(
            crate::SPEC_COVERAGE,
            enum_src,
            0,
            0,
            format!("`enum {enum_name}` not found"),
        ));
        return out;
    };
    for (fn_name, role) in [(encode_fn, "encoder"), (decode_fn, "decoder")] {
        let Some(line0) = find_fn(codec_src, fn_name) else {
            out.push(Finding::new(
                crate::SPEC_COVERAGE,
                codec_src,
                0,
                0,
                format!("`fn {fn_name}` ({role}) not found"),
            ));
            continue;
        };
        let Some((start, end)) = body_range(codec_src, line0) else {
            continue;
        };
        let mut covered: Vec<String> = Vec::new();
        let tag = format!("{enum_name}::");
        for line in &codec_src.lines[start..=end] {
            let code = &line.code;
            let mut from = 0;
            while let Some(pos) = code[from..].find(&tag) {
                let at = from + pos + tag.len();
                let name: String =
                    code[at..].chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                if !name.is_empty() && !covered.contains(&name) {
                    covered.push(name);
                }
                from = at;
            }
        }
        for v in &variants {
            if !covered.contains(v) {
                out.push(Finding::new(
                    crate::SPEC_COVERAGE,
                    codec_src,
                    line0,
                    0,
                    format!(
                        "`{enum_name}::{v}` is not covered by the {role} `{fn_name}`; \
                         encode and decode must cover identical variant sets"
                    ),
                ));
            }
        }
    }
    out
}

/// `(name, line0)` of every top-level `fn` whose name starts with one of
/// `prefixes`.
fn fn_defs(src: &SourceFile, prefixes: &[&str]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        for col in find_word(&line.code, "fn") {
            let rest = &line.code[col + 2..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if prefixes.iter().any(|p| name.starts_with(p)) {
                out.push((name, i));
            }
        }
    }
    out
}

/// The line of the `fn <name>` item, if any.
fn find_fn(src: &SourceFile, name: &str) -> Option<usize> {
    let needle = format!("fn {name}");
    src.lines.iter().position(|l| {
        find_word(&l.code, &needle).iter().any(|&c| {
            !l.code[c + needle.len()..].starts_with(|ch: char| ch.is_alphanumeric() || ch == '_')
        })
    })
}

/// The inclusive line range of the brace block opening at or after
/// `start_line`.
fn body_range(src: &SourceFile, start_line: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut opened = false;
    for (i, line) in src.lines.iter().enumerate().skip(start_line) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((start_line, i));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// `(variant names, declaration line)` of `enum <name>`.
fn enum_variants(src: &SourceFile, name: &str) -> Option<(Vec<String>, usize)> {
    let needle = format!("enum {name}");
    let decl = src.lines.iter().position(|l| !find_word(&l.code, &needle).is_empty())?;
    let (start, end) = body_range(src, decl)?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    for line in &src.lines[start..=end] {
        let trimmed = line.code.trim_start();
        // A variant is an uppercase identifier at nesting depth 1 (i.e.
        // directly inside the enum's braces, not inside a variant body).
        if depth == 1 {
            let variant: String =
                trimmed.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if variant.chars().next().is_some_and(|c| c.is_uppercase()) {
                variants.push(variant);
            }
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    Some((variants, decl))
}

/// Every identifier token in a code line.
fn idents(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}
