//! `gcs-lint`: project-specific static analysis for the pgcs workspace.
//!
//! The repository's headline guarantee — bit-for-bit reproducible
//! simulation digests, panic-free long-running daemons, fully registered
//! executable specifications — rests on source conventions nothing in
//! `rustc` or `clippy` enforces. This crate turns those conventions into
//! tier-1 CI failures with five lints:
//!
//! - [`lints::determinism`] — no wall-clock reads, OS entropy, or
//!   randomized-iteration containers in the crates whose output feeds
//!   the FNV-1a run digests;
//! - [`lints::panic_path`] — no `unwrap`/`expect`/`panic!`/indexing in
//!   the long-running daemon paths of `crates/net`;
//! - [`lints::atomics`] — every atomic `Ordering::` use carries an
//!   `// ordering: <why>` justification;
//! - [`lints::spec_cov`] — every invariant defined in `crates/core` is
//!   registered in `all_invariants()`, and the `Wire` enum's encode and
//!   decode arms cover identical variant sets;
//! - [`lints::mc_shim`] — the modules certified by the gcs-mc model
//!   checker must reach every sync primitive through the `Shims`
//!   surface, never `std::sync` directly, so the structure the checker
//!   explores is the structure that ships.
//!
//! Findings are suppressed inline with
//! `// gcs-lint: allow(<lint-id>, reason = "…")` (or `allow-file`); a
//! suppression without a reason, or one that suppresses nothing, is
//! itself a finding. The scanner is hand-rolled and line-aware (see
//! [`scan`]) — no `syn`, no dependencies — so the full workspace scan
//! stays well under the interactive budget (~2 s) and builds offline.

pub mod lints;
pub mod scan;

use scan::{collect_allows, AllowTarget, SourceFile};
use std::fmt;
use std::path::{Path, PathBuf};

/// Lint identifiers (also the `allow(…)` ids).
pub const DETERMINISM: &str = "determinism";
/// See [`lints::panic_path`].
pub const PANIC_PATH: &str = "panic_path";
/// See [`lints::atomics`].
pub const ATOMICS_ORDER: &str = "atomics_order";
/// See [`lints::spec_cov`].
pub const SPEC_COVERAGE: &str = "spec_coverage";
/// See [`lints::mc_shim`].
pub const MC_SHIM: &str = "mc_shim";
/// Framework lint: a suppression missing its mandatory reason.
pub const BAD_ALLOW: &str = "bad_allow";
/// Framework lint: a suppression that suppresses nothing.
pub const UNUSED_ALLOW: &str = "unused_allow";

/// One lint finding. `line`/`col` are 1-based.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// The lint that fired (an `allow(…)` id).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(
        lint: &'static str,
        src: &SourceFile,
        line0: usize,
        col0: usize,
        message: String,
    ) -> Finding {
        Finding { lint, file: src.path.clone(), line: line0 + 1, col: col0 + 1, message }
    }

    /// Renders the finding as a JSON object (hand-rolled; no deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(self.lint),
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: deny({}): {}", self.file, self.line, self.col, self.lint, self.message)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The result of a workspace run.
#[derive(Debug)]
pub struct Report {
    /// Every surviving finding, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

/// Runs every per-file lint applicable to `src` (by its path) and
/// resolves suppressions. Spec-coverage is workspace-level and not part
/// of this (see [`lints::spec_cov::check_workspace`]).
pub fn lint_source(src: &SourceFile) -> Vec<Finding> {
    let mut raw = Vec::new();
    if lints::determinism::applies(&src.path) {
        raw.extend(lints::determinism::check(src));
    }
    if lints::panic_path::applies(&src.path) {
        raw.extend(lints::panic_path::check(src));
    }
    if lints::mc_shim::applies(&src.path) {
        raw.extend(lints::mc_shim::check(src));
    }
    raw.extend(lints::atomics::check(src));
    apply_allows(src, raw)
}

/// Resolves `gcs-lint: allow(…)` suppressions against `raw` findings:
/// matched findings are dropped, reasonless suppressions become
/// [`BAD_ALLOW`] findings, and suppressions that match nothing become
/// [`UNUSED_ALLOW`] findings.
pub fn apply_allows(src: &SourceFile, raw: Vec<Finding>) -> Vec<Finding> {
    let allows = collect_allows(src);
    let mut used = vec![false; allows.len()];
    let mut out = Vec::new();

    for f in raw {
        let line0 = f.line - 1;
        let hit = allows.iter().enumerate().find(|(_, a)| {
            a.lint == f.lint
                && match a.target {
                    AllowTarget::Line(l) => l == line0,
                    AllowTarget::File => true,
                    AllowTarget::Dangling => false,
                }
        });
        match hit {
            Some((i, _)) => used[i] = true,
            None => out.push(f),
        }
    }

    for (i, a) in allows.iter().enumerate() {
        if a.reason.is_none() {
            out.push(Finding::new(
                BAD_ALLOW,
                src,
                a.line,
                0,
                format!(
                    "suppression of `{}` must carry a reason: \
                     `gcs-lint: allow({}, reason = \"…\")`",
                    a.lint, a.lint
                ),
            ));
        }
        if !used[i] {
            out.push(Finding::new(
                UNUSED_ALLOW,
                src,
                a.line,
                0,
                format!("suppression of `{}` matches no finding; remove it", a.lint),
            ));
        }
    }
    out
}

/// Scans the whole workspace under `root`: every `.rs` file in `src/`
/// and `crates/*/src/` (production source only — `tests/`, `examples/`,
/// and the vendored dependency stubs are out of scope), plus the
/// workspace-level spec-coverage cross-checks.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        walk_rs(&top, &mut files)?;
    }
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
        .map_err(|e| format!("{}: {e}", crates.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let src = SourceFile::parse(&rel.display().to_string().replace('\\', "/"), &content);
        findings.extend(lint_source(&src));
    }
    findings.extend(lints::spec_cov::check_workspace(root));
    findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(Report { findings, files_scanned: files.len() })
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
