#!/usr/bin/env bash
# Smoke-run the micro benchmark suite in quick mode (short measurement
# windows, a few samples per bench). Exercises the checker-path benches
# added with the derived-state snapshot work — invariant_suite_one_state,
# simulation_abstraction_one_state, derived_state_snapshot — alongside
# the rest of the suite. Extra arguments are forwarded to the bench
# harness (e.g. a substring filter: `scripts/bench_smoke.sh derived`).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo bench -p gcs-bench --bench micro -- --quick "$@"
# Metrics overhead (registry on vs off): obs_overhead/frame_path_bare is
# the uninstrumented hot path, obs_overhead/frame_path_instrumented adds
# the gcs-obs counter bump + trace-ring event a real frame pays; the
# delta is the per-frame observability cost (expect low tens of ns).
cargo bench -p gcs-bench --bench micro -- --quick obs_overhead
# Loopback TCP cluster throughput (gcs-net): boots real sockets on
# 127.0.0.1 and measures delivery of 100-op batches through the ring.
cargo bench -p gcs-bench --bench loopback -- --quick "$@"
# Sharded multi-group throughput (gcs-shard): 4 keyed KV groups over 5
# loopback nodes, aggregate ops/s across all shards (quick sizing; the
# gated run with the partition/merge phase lives in ci.sh).
cargo build --release -p gcs-shard --quiet
./target/release/gcs-shard-bench --ops 1000 --warmup 200 --window 64 --delta-ms 60 --no-partition --out /tmp/BENCH_shard_smoke.json
# Batched-token wire codec: Token encode/decode at batch sizes
# 1/16/256/4096; per-element cost should fall as the batch grows.
cargo bench -p gcs-bench --bench token_codec -- --quick "$@"
# Lint runtime: a full workspace scan must stay interactive (budget ~2 s)
# so the tier-1 gcs-lint stage never becomes the slow part of ci.sh.
cargo build --release -p gcs-lint --quiet
t0=$(date +%s%N)
./target/release/gcs-lint --root . > /dev/null
t1=$(date +%s%N)
echo "lint-runtime: full workspace scan in $(( (t1 - t0) / 1000000 )) ms (budget ~2000 ms)"
# Model-checker runtime: the tier-1 bound-1 exploration of all three
# ported structures must stay well inside its ci.sh budget (<30 s) —
# if a new model or a widened schedule space blows this up, it shows
# here before it slows the merge bar.
cargo test -q -p gcs-obs --test mc_ring --no-run 2> /dev/null
cargo test -q -p gcs-net --test mc_queue --no-run 2> /dev/null
t0=$(date +%s%N)
GCS_MC_BOUND=1 cargo test -q -p gcs-obs --test mc_ring --test mc_registry > /dev/null
GCS_MC_BOUND=1 cargo test -q -p gcs-net --test mc_queue > /dev/null
t1=$(date +%s%N)
echo "mc-runtime: bound-1 models (ring, registry, queue) in $(( (t1 - t0) / 1000000 )) ms (budget ~30000 ms)"
