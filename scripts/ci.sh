#!/usr/bin/env bash
# The full CI gate: release build (binaries included), the complete test
# suite, a deterministic-simulation smoke sweep, and clippy with
# warnings promoted to errors. Everything runs offline against the
# vendored dependency set; a clean exit here is the merge bar.
#
# NIGHTLY=1 adds the long stages: a 200-seed simulation sweep and the
# injected-bug end-to-end check (the harness must catch and shrink a
# deliberately broken token path).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> gcs-sim run --seeds 10 (smoke)"
./target/release/gcs-sim run --seeds 10

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

if [[ "${NIGHTLY:-0}" == "1" ]]; then
  echo "==> [nightly] gcs-sim run --seeds 200"
  ./target/release/gcs-sim run --seeds 200

  echo "==> [nightly] injected-bug catch + shrink (bug-hook feature)"
  cargo test -p gcs-sim --features bug-hook --test bug_catch -q
fi

echo "==> ci.sh: all green"
