#!/usr/bin/env bash
# The full CI gate: release build (binaries included), the complete test
# suite, the gcs-mc model-checking gate (bound-1 interleaving
# exploration + seeded-bug detection), a deterministic-simulation smoke
# sweep, and clippy with warnings promoted to errors. Everything runs
# offline against the vendored dependency set; a clean exit here is the
# merge bar.
#
# NIGHTLY=1 adds the long stages: a 200-seed simulation sweep, the
# 200-seed hostile-network corpus (adaptive vs fixed detector gate),
# the injected-bug end-to-end check (the harness must catch and shrink
# a deliberately broken token path), bound-2 model checking, and the
# ThreadSanitizer pass (loudly skipped offline).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> gcs-lint --root . (project lints; see docs/LINTS.md)"
cargo build --release -p gcs-lint --quiet
./target/release/gcs-lint --root .

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p gcs-lint (lint fixture self-tests + workspace-clean meta-test)"
cargo test -q -p gcs-lint

# gcs-mc model-checking gate (see docs/CONCURRENCY.md): exhaustively
# explore every interleaving of the ported structures — obs trace ring,
# metrics registry/histogram, net send queue — within preemption bound
# 1 (the CHESS result: most real concurrency bugs need <=2 preemptions;
# bound 2 runs nightly). Zero races, zero deadlocks, zero assertion
# failures is the bar. Budget: <30 s total.
echo "==> gcs-mc models at preemption bound 1 (ring, registry, queue)"
GCS_MC_BOUND=1 cargo test -q -p gcs-mc
GCS_MC_BOUND=1 cargo test -q -p gcs-obs --test mc_ring --test mc_registry
GCS_MC_BOUND=1 cargo test -q -p gcs-net --test mc_queue

# Seeded-bug meta-test: with the mc-seeded-bug feature the trace ring's
# seq publish is downgraded AcqRel -> Relaxed; the happens-before
# checker must catch it (VacuousAcquire, file:line on both sides) and
# the failing schedule must replay. This proves the checker can see the
# class of bug the clean runs above claim is absent.
echo "==> gcs-mc seeded-bug detection (mc-seeded-bug feature)"
cargo test -q -p gcs-obs --features mc-seeded-bug --test mc_seeded_bug

echo "==> gcs-sim run --seeds 10 (smoke)"
./target/release/gcs-sim run --seeds 10

# Hostile-network corpus smoke: every regime (link flap at the
# detection threshold, asymmetric slowdown, bimodal WAN delays, split
# storms, 50-node churn) under BOTH detector policies. The gate inside
# the command: zero checker/monitor violations on every run, and the
# adaptive detector installs strictly fewer views than fixed timeouts
# on the flap/bimodal regimes (per seed).
echo "==> gcs-sim hostile --seeds 10 (adaptive-vs-fixed corpus smoke)"
./target/release/gcs-sim hostile --seeds 10

# Throughput smoke gate: the 5-node loopback cluster must clear a floor
# of 25k ops/s (2x the pre-batching seed's 12.5k) with the VS/TO
# checkers and b/d monitors on. The floor is deliberately far below the
# bench's ~125k+ headline so scheduler noise on loaded CI boxes never
# flakes it, while a regression that undoes the batched token path
# (which would land back near 12k) still fails loudly.
echo "==> gcs-loopback-bench --floor 25000 (throughput smoke gate)"
./target/release/gcs-loopback-bench --ops 20000 --window 1024 --floor 25000

# Sharded aggregate gate: 4 groups of 3 nodes over 5 hosts must clear
# 2x the single-group floor in aggregate, with every group's VS/TO
# checkers, b/d monitors, and the per-key linearizability checker on,
# through a one-group partition/merge. Measured headline is ~200k+
# aggregate; 50k keeps the same scheduler-noise margin as the 25k gate.
echo "==> gcs-shard-bench --floor 50000 (sharded aggregate gate)"
./target/release/gcs-shard-bench --ops 10000 --window 256 --warmup 1000 --delta-ms 60 --floor 50000

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

if [[ "${NIGHTLY:-0}" == "1" ]]; then
  echo "==> [nightly] gcs-sim run --seeds 200"
  ./target/release/gcs-sim run --seeds 200

  # The full hostile sweep: 200 seeds x 5 regimes x 2 policies. Fails
  # on any checker/monitor violation or any seed where the adaptive
  # detector does not hold membership strictly more stable than fixed
  # timeouts on the flap/bimodal regimes — the view-change-rate
  # regression gate for the accrual detector.
  echo "==> [nightly] gcs-sim hostile --seeds 200"
  ./target/release/gcs-sim hostile --seeds 200

  echo "==> [nightly] injected-bug catch + shrink (bug-hook feature)"
  cargo test -p gcs-sim --features bug-hook --test bug_catch -q

  # Deeper model-checking: preemption bound 2 explores the interleavings
  # tier-1's bound-1 pass cannot reach (schedules needing two forced
  # preemptions). Above the bound the checker falls back to seeded
  # pseudo-random sampling, so this also exercises the sampling paths.
  echo "==> [nightly] gcs-mc models at preemption bound 2"
  GCS_MC_BOUND=2 cargo test -q -p gcs-mc
  GCS_MC_BOUND=2 cargo test -q -p gcs-obs --test mc_ring --test mc_registry
  GCS_MC_BOUND=2 cargo test -q -p gcs-net --test mc_queue

  # ThreadSanitizer over the concurrency-heavy crates validates the
  # happens-before claims the `// ordering:` annotations make (the
  # atomics_order lint forces the claims; TSan checks them). Needs the
  # nightly toolchain with rust-src (-Zbuild-std rebuilds std with TSan
  # instrumentation); in offline containers the component cannot be
  # fetched, so skip with a notice instead of failing the run.
  echo "==> [nightly] ThreadSanitizer (gcs-obs, gcs-net)"
  if rustup component add rust-src --toolchain nightly >/dev/null 2>&1 \
     || ls "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library/std/Cargo.toml" >/dev/null 2>&1; then
    RUSTFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
      -p gcs-obs -p gcs-net -q
  else
    echo "!!==================================================================!!"
    echo "!! SKIPPED: ThreadSanitizer stage (nightly rust-src unavailable —   !!"
    echo "!! offline container). The ordering: claims were NOT validated by   !!"
    echo "!! TSan this run; the gcs-mc happens-before checker remains the     !!"
    echo "!! only active validator. Run on a networked host to close this.    !!"
    echo "!!==================================================================!!"
  fi
fi

echo "==> ci.sh: all green"
