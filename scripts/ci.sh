#!/usr/bin/env bash
# The full CI gate: release build (binaries included), the complete test
# suite, and clippy with warnings promoted to errors. Everything runs
# offline against the vendored dependency set; a clean exit here is the
# merge bar.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> ci.sh: all green"
