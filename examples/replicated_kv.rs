//! A replicated key-value store over totally ordered broadcast — the
//! replicated-state-machine construction of the paper's footnote 3.
//!
//! Writes from different processors are serialized by the TO service;
//! each node replays its delivered stream into a local `SeqMemory`
//! replica. Reads are local (free); the example demonstrates convergence
//! and checks sequential consistency, across a crash and recovery of one
//! replica.
//!
//! Run with: `cargo run --example replicated_kv`

use pgcs::apps::seqmem::{check_sequential_consistency, SeqMemory};
use pgcs::apps::KvOp;
use pgcs::model::failure::FailureScript;
use pgcs::model::{ProcId, Value};
use pgcs::vsimpl::{Stack, StackConfig};

fn main() {
    let n = 3u32;
    let mut stack = Stack::new(StackConfig::standard(n, 5, 99));
    let pi = stack.config().pi;
    let t0 = 4 * pi;

    // p2 crashes for a while in the middle of the write stream, then
    // recovers (without losing state) and catches up.
    let mut script = FailureScript::new();
    script.crash(t0 + 100, ProcId(2)).recover(t0 + 40 * pi, ProcId(2));
    stack.load_failures(&script);

    let writes = [
        (ProcId(0), KvOp::Put { key: "name".into(), value: 1 }),
        (ProcId(1), KvOp::Put { key: "count".into(), value: 10 }),
        (ProcId(2), KvOp::Inc { key: "count".into(), by: 5 }),
        (ProcId(0), KvOp::Inc { key: "count".into(), by: -3 }),
        (ProcId(1), KvOp::Del { key: "name".into() }),
        (ProcId(0), KvOp::Put { key: "done".into(), value: 1 }),
    ];
    println!("submitting {} writes:", writes.len());
    for (i, (p, op)) in writes.iter().enumerate() {
        println!("  {p}: {op:?}");
        stack.schedule_value(t0 + i as u64 * 30, *p, op.encode());
    }

    stack.run_until(t0 + 200 * pi);

    // Replay each node's delivered stream into a replica, reading between
    // applications.
    let mut replicas: Vec<SeqMemory> = (0..n).map(|_| SeqMemory::new()).collect();
    let mut longest: Vec<Value> = Vec::new();
    for (i, replica) in replicas.iter_mut().enumerate() {
        let stream: Vec<Value> =
            stack.delivered(ProcId(i as u32)).iter().map(|(_, a)| a.clone()).collect();
        for payload in &stream {
            replica.deliver(payload);
            replica.read("count");
        }
        if stream.len() > longest.len() {
            longest = stream;
        }
    }

    println!("\nreplica states after replay:");
    for (i, r) in replicas.iter().enumerate() {
        println!(
            "  p{i}: applied {} updates, count = {:?}, done = {:?}",
            r.applied(),
            r.store().get("count"),
            r.store().get("done"),
        );
    }

    // Convergence: every replica applied all writes and agrees.
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.applied(), writes.len(), "p{i} missed updates");
        assert_eq!(r.store().get("count"), Some(12));
        assert_eq!(r.store().get("name"), None);
        assert_eq!(r.store().get("done"), Some(1));
    }

    check_sequential_consistency(&replicas, &longest).expect("sequentially consistent");
    println!("\nreplicated_kv OK: all replicas converged (count = 12), reads consistent.");
}
