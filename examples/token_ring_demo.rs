//! The bare VS service, without the `VStoTO` layer: watch the
//! Cristian–Schmuck membership and the token ring do their work.
//!
//! Four nodes host a trivial echo client. The demo prints the VS
//! interface timeline — views installed, messages delivered by the
//! circulating token, safe indications once the token has seen every
//! member — across a partition and a merge.
//!
//! Run with: `cargo run --example token_ring_demo`

use pgcs::model::failure::FailureScript;
use pgcs::model::{ProcId, Value};
use pgcs::netsim::{Engine, NetConfig, TraceEvent};
use pgcs::spec::cause::check_trace;
use pgcs::vsimpl::timed_vstoto::EchoClient;
use pgcs::vsimpl::{ImplEvent, ProtoConfig, VsNode};
use std::collections::BTreeSet;

fn main() {
    let n = 4u32;
    let proto = ProtoConfig::standard(n, 5);
    let nodes = (0..n).map(|i| VsNode::new(ProcId(i), proto.clone(), EchoClient::new(i)));
    let mut engine = Engine::new(nodes, NetConfig::with_delta(5), 123);

    // Partition {0,1} | {2,3} at t=300; heal at t=1500.
    let ambient = ProcId::range(n);
    let left: BTreeSet<ProcId> = [ProcId(0), ProcId(1)].into();
    let right: BTreeSet<ProcId> = ambient.difference(&left).copied().collect();
    let mut script = FailureScript::new();
    script.partition(300, &[left, right], &ambient);
    script.heal(1_500, &ambient);
    engine.load_failures(&script);

    // A few sends before, during, and after the partition.
    for (t, p, x) in [(100, 0, 1u64), (700, 0, 2), (750, 2, 3), (2_500, 3, 4)] {
        engine.schedule_input(t, ProcId(p), Value::from_u64(x));
    }

    engine.run_until(4_000);

    println!("VS interface timeline (abridged to view and message events):\n");
    let mut gprcv = 0usize;
    let mut safes = 0usize;
    for ev in engine.trace().events() {
        match &ev.action {
            TraceEvent::App(ImplEvent::NewView { p, v }) => {
                println!("  t={:<5} newview {v} at {p}", ev.time);
            }
            TraceEvent::App(ImplEvent::GpSnd { p, m, .. }) => {
                println!("  t={:<5} gpsnd  {m:?} from {p}", ev.time);
            }
            TraceEvent::App(ImplEvent::GpRcv { .. }) => gprcv += 1,
            TraceEvent::App(ImplEvent::Safe { src, dst, m, .. }) => {
                safes += 1;
                if safes <= 8 {
                    println!("  t={:<5} safe   {m:?} ({src}→{dst})", ev.time);
                }
            }
            TraceEvent::Fail { subject, status } => {
                println!("  t={:<5} --- {subject} becomes {status} ---", ev.time);
            }
            _ => {}
        }
    }
    println!("\n  ({gprcv} gprcv events, {safes} safe events in total)");

    // Every client of every node saw consistent views and messages.
    let actions = pgcs::vsimpl::convert::vs_actions(engine.trace());
    let report = check_trace(&actions, &ProcId::range(n));
    assert!(report.ok(), "{:?}", report.violations.first());
    println!("\ntoken_ring_demo OK: {report}");

    // After the heal, all nodes share one view.
    let views: BTreeSet<_> =
        (0..n).map(|i| engine.process(ProcId(i)).current_view().expect("view").clone()).collect();
    assert_eq!(views.len(), 1, "views must converge after the heal");
    println!("final converged view: {}", views.iter().next().expect("nonempty"));
}
