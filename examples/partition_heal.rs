//! Partition and heal: the scenario the paper is about.
//!
//! Five processors split 3 | 2. The majority side keeps confirming new
//! values (its view is primary); the minority side installs its own view
//! but cannot confirm — its submissions wait. When the network heals, the
//! membership protocol merges the group, the `VStoTO` state exchange
//! reconciles the two histories, and the minority's values finally reach
//! every client, still in one agreed total order.
//!
//! Run with: `cargo run --example partition_heal`

use pgcs::model::failure::FailureScript;
use pgcs::model::ProcId;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::{Stack, StackConfig};
use std::collections::BTreeSet;

fn show_views(stack: &Stack, label: &str) {
    println!("{label}");
    for i in 0..5 {
        let p = ProcId(i);
        match stack.view_of(p) {
            Some(v) => println!("  {p}: view {v}, delivered {}", stack.delivered(p).len()),
            None => println!("  {p}: no view"),
        }
    }
}

fn main() {
    let mut stack = Stack::new(StackConfig::standard(5, 5, 7));
    let pi = stack.config().pi;
    let ambient = ProcId::range(5);
    let majority = ProcId::range(3);
    let minority: BTreeSet<ProcId> = ambient.difference(&majority).copied().collect();

    let t_part = 8 * pi;
    let t_heal = t_part + 80 * pi;
    let mut script = FailureScript::new();
    script.partition(t_part, &[majority.clone(), minority.clone()], &ambient);
    script.heal(t_heal, &ambient);
    stack.load_failures(&script);

    // Traffic during the partition, from both sides.
    for i in 0..4u64 {
        stack.schedule_bcast(t_part + 100 + i * 50, ProcId(i as u32 % 3)); // majority
    }
    stack.schedule_bcast(t_part + 150, ProcId(3)); // minority
    stack.schedule_bcast(t_part + 250, ProcId(4)); // minority

    stack.run_until(t_part + 40 * pi);
    show_views(&stack, &format!("\nduring the partition (t={}):", stack.now()));
    let majority_count = stack.delivered(ProcId(0)).len();
    let minority_count = stack.delivered(ProcId(3)).len();
    println!(
        "\n  majority side confirmed {majority_count} values; \
         minority confirmed {minority_count} (no quorum → no primary view)"
    );
    assert_eq!(majority_count, 4);
    assert_eq!(minority_count, 0);

    stack.run_until(t_heal + 100 * pi);
    show_views(&stack, &format!("\nafter the heal (t={}):", stack.now()));
    for &p in &ambient {
        let v = stack.view_of(p).expect("view installed");
        assert_eq!(v.set, ambient, "everyone must converge to the full group");
    }

    // All six values are now delivered everywhere, identically ordered.
    let d0 = stack.delivered(ProcId(0)).to_vec();
    assert_eq!(d0.len(), 6, "reconciliation must recover the minority values");
    for i in 1..5 {
        assert_eq!(stack.delivered(ProcId(i)), &d0[..]);
    }
    println!("\nfinal agreed order:");
    for (src, v) in &d0 {
        println!("  {src} → {v:?}");
    }

    let report = check_to_trace(&stack.to_obs().untimed());
    assert!(report.ok(), "{:?}", report.violations.first());
    println!("\npartition_heal OK: {report}");
}
