//! The stack on real OS threads: the same protocol state machines as the
//! deterministic simulator, but with crossbeam channels, wall-clock
//! timers, and a router applying link delays — including a live partition
//! toggled while the system runs.
//!
//! Run with: `cargo run --example threaded_demo`

use pgcs::model::{ProcId, Status, Value};
use pgcs::spec::cause::check_trace;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::{convert, ThreadedConfig, ThreadedStack};
use std::time::Duration;

fn main() {
    let stack = ThreadedStack::start(ThreadedConfig::small(3, 99));
    println!("three nodes running on threads (δ = 4 ms, π = 24 ms)…");

    for i in 0..4u64 {
        stack.bcast(ProcId((i % 3) as u32), Value::from_u64(i + 1));
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(stack.await_deliveries(4, Duration::from_secs(10)), "initial burst timed out");
    println!("initial burst delivered at every node after {} ms", stack.uptime_ms());

    // Cut p2 off, keep broadcasting from the majority side.
    stack.set_pair(ProcId(0), ProcId(2), Status::Bad);
    stack.set_pair(ProcId(1), ProcId(2), Status::Bad);
    println!("p2 partitioned away; majority continues…");
    std::thread::sleep(Duration::from_millis(200));
    for i in 4..8u64 {
        stack.bcast(ProcId((i % 2) as u32), Value::from_u64(i + 1));
    }
    // Majority delivers; p2 lags.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let d = stack.delivered();
        if d[0].len() >= 8 && d[1].len() >= 8 {
            println!(
                "majority at 8 deliveries; isolated p2 still at {} — no quorum, no progress",
                d[2].len()
            );
            break;
        }
        assert!(std::time::Instant::now() < deadline, "majority stalled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Heal and let p2 reconcile.
    stack.set_pair(ProcId(0), ProcId(2), Status::Good);
    stack.set_pair(ProcId(1), ProcId(2), Status::Good);
    println!("network healed; waiting for p2 to reconcile…");
    assert!(stack.await_deliveries(8, Duration::from_secs(15)), "reconciliation timed out");

    let delivered = stack.delivered();
    println!("routed {} packets in {} ms", stack.packets_routed(), stack.uptime_ms());
    let trace = stack.shutdown();
    for d in &delivered[1..] {
        assert_eq!(&delivered[0][..8], &d[..8], "orders diverge");
    }
    println!("all three nodes agree on one order of 8 values.");

    let to = check_to_trace(&convert::to_obs(&trace).untimed());
    assert!(to.ok(), "{:?}", to.violations.first());
    let cause = check_trace(&convert::vs_actions(&trace), &ProcId::range(3));
    assert!(cause.ok(), "{:?}", cause.violations.first());
    println!("threaded_demo OK: wall-clock traces satisfy both specifications.");
}
