//! Quickstart: totally ordered broadcast among three processors.
//!
//! Builds the full stack (VStoTO over the token-ring VS service over the
//! simulated network), broadcasts a handful of values from different
//! processors, and shows that every client receives the same total order
//! — then verifies the run against the `TO-machine` and `VS-machine`
//! trace checkers.
//!
//! Run with: `cargo run --example quickstart`

use pgcs::model::ProcId;
use pgcs::spec::cause::check_trace;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::{Stack, StackConfig};

fn main() {
    // Three processors, channel delay δ = 5 ticks, seeded determinism.
    let mut stack = Stack::new(StackConfig::standard(3, 5, 42));
    let t0 = 4 * stack.config().pi;

    println!("submitting 6 values from alternating processors…");
    for i in 0..6u64 {
        let p = ProcId((i % 3) as u32);
        let v = stack.schedule_bcast(t0 + i * 10, p);
        println!("  t={:<4} bcast({v:?}) at {p}", t0 + i * 10);
    }

    stack.run_until(t0 + 2_000);

    println!("\ndelivered sequences (src, value):");
    for i in 0..3 {
        let p = ProcId(i);
        println!("  {p}: {:?}", stack.delivered(p));
    }

    let d0 = stack.delivered(ProcId(0)).to_vec();
    assert_eq!(d0.len(), 6, "all six values must be delivered");
    for i in 1..3 {
        assert_eq!(stack.delivered(ProcId(i)), &d0[..], "total order must agree");
    }

    // Verify the run against the paper's specifications.
    let to_report = check_to_trace(&stack.to_obs().untimed());
    println!("\nTO-machine conformance: {to_report}");
    assert!(to_report.ok());

    let vs_report = check_trace(&stack.vs_actions(), &ProcId::range(3));
    println!("VS Lemma 4.2 conformance: {vs_report}");
    assert!(vs_report.ok());

    println!("\nquickstart OK: one agreed total order, both specifications satisfied.");
}
