//! # pgcs — a partitionable group communication service
//!
//! A complete, executable reproduction of *Specifying and Using a
//! Partitionable Group Communication Service* (Fekete, Lynch,
//! Shvartsman; PODC 1997 / ACM TOCS 2001): the `VS` and `TO`
//! specifications as executable I/O automata, the `VStoTO` algorithm with
//! its invariant suite and simulation relation checked at runtime, a
//! Cristian–Schmuck membership + token-ring implementation of VS over a
//! deterministic discrete-event network with the paper's good/bad/ugly
//! failure model, replicated-memory applications, and an experiment
//! harness regenerating every formal artifact and analytical bound.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`model`] — processors, views, labels, summaries, quorums, failures;
//! - [`ioa`] — the I/O automaton framework (schedulers, invariants,
//!   forward simulations, timed traces);
//! - [`spec`] — the paper's contribution: `TO-machine`, `VS-machine`,
//!   `VStoTO`, invariants, the simulation relation, property checkers;
//! - [`netsim`] — the discrete-event network simulator;
//! - [`vsimpl`] — the VS service implementation and the full TO stack;
//! - [`net`] — the same stack over real TCP sockets: wire codec,
//!   reconnecting peer transport, node daemon, load client, loopback
//!   cluster harness;
//! - [`apps`] — replicated state machines and memories over TO;
//! - [`harness`] — the experiments (E1–E14).
//!
//! ## Quickstart
//!
//! ```
//! use pgcs::vsimpl::{Stack, StackConfig};
//! use pgcs::model::ProcId;
//!
//! // Three processors, channel delay δ = 5, deterministic seed.
//! let mut stack = Stack::new(StackConfig::standard(3, 5, 42));
//! let t0 = 4 * stack.config().pi;
//! for i in 0..5u64 {
//!     stack.schedule_bcast(t0 + i * 10, ProcId((i % 3) as u32));
//! }
//! stack.run_until(t0 + 2_000);
//! // Every client delivered all five values in the same total order.
//! let d0 = stack.delivered(ProcId(0)).to_vec();
//! assert_eq!(d0.len(), 5);
//! assert_eq!(stack.delivered(ProcId(1)), &d0[..]);
//! assert_eq!(stack.delivered(ProcId(2)), &d0[..]);
//! ```

#![forbid(unsafe_code)]

pub use gcs_apps as apps;
pub use gcs_core as spec;
pub use gcs_harness as harness;
pub use gcs_ioa as ioa;
pub use gcs_model as model;
pub use gcs_net as net;
pub use gcs_netsim as netsim;
pub use gcs_sim as sim;
pub use gcs_vsimpl as vsimpl;
