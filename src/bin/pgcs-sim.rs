//! `pgcs-sim` — run the TO service stack under a named failure scenario
//! and print the timeline, delivery report, and specification checks.
//!
//! ```text
//! USAGE:
//!   pgcs-sim [--n N] [--delta D] [--seed S] [--msgs M]
//!            [--scenario stable|partition|merge|crash|cascade]
//!            [--one-round] [--safe-delivery] [--timeline]
//! ```

use pgcs::harness::scenarios;
use pgcs::model::ProcId;
use pgcs::netsim::TraceEvent;
use pgcs::spec::cause::check_trace;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::{ImplEvent, MembershipMode};

struct Args {
    n: u32,
    delta: u64,
    seed: u64,
    msgs: usize,
    scenario: String,
    one_round: bool,
    safe_delivery: bool,
    timeline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 4,
        delta: 5,
        seed: 1,
        msgs: 10,
        scenario: "merge".into(),
        one_round: false,
        safe_delivery: false,
        timeline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--n" => args.n = val("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--delta" => {
                args.delta = val("--delta")?.parse().map_err(|e| format!("--delta: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--msgs" => args.msgs = val("--msgs")?.parse().map_err(|e| format!("--msgs: {e}"))?,
            "--scenario" => args.scenario = val("--scenario")?,
            "--one-round" => args.one_round = true,
            "--safe-delivery" => args.safe_delivery = true,
            "--timeline" => args.timeline = true,
            "--help" | "-h" => {
                println!(
                    "pgcs-sim: simulate the partitionable group communication stack\n\n\
                     options:\n  --n N            processors (default 4)\n  \
                     --delta D        channel delay δ (default 5)\n  \
                     --seed S         RNG seed (default 1)\n  \
                     --msgs M         client submissions (default 10)\n  \
                     --scenario NAME  stable|partition|merge|crash|cascade (default merge)\n  \
                     --one-round      use the 1-round membership variant\n  \
                     --safe-delivery  use Totem-style safe delivery\n  \
                     --timeline       print the full event timeline"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.n < 2 || args.n > 16 {
        return Err("--n must be in 2..=16".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pgcs-sim: {e}");
            std::process::exit(2);
        }
    };
    let mut sc = match args.scenario.as_str() {
        "stable" => scenarios::stable(args.n, args.delta, args.msgs, args.seed),
        "partition" => {
            scenarios::partition(args.n, args.n / 2 + 1, args.delta, args.msgs, args.seed)
        }
        "merge" => scenarios::merge(args.n, args.n / 2 + 1, args.delta, args.msgs, args.seed),
        "crash" => scenarios::crash(args.n, args.delta, args.msgs, args.seed),
        "cascade" => scenarios::cascade(args.n.max(4), args.delta, args.msgs, args.seed),
        other => {
            eprintln!("pgcs-sim: unknown scenario {other}");
            std::process::exit(2);
        }
    };
    sc.config.mode =
        if args.one_round { MembershipMode::OneRound } else { MembershipMode::ThreeRound };
    sc.config.safe_delivery = args.safe_delivery;

    println!(
        "scenario {} | n={} δ={} π={} μ={} seed={} msgs={} horizon={}",
        sc.name,
        sc.config.n,
        sc.config.delta,
        sc.config.pi,
        sc.config.mu,
        sc.config.seed,
        args.msgs,
        sc.horizon
    );
    let stack = sc.run();

    if args.timeline {
        println!("\ntimeline:");
        for ev in stack.trace().events() {
            match &ev.action {
                TraceEvent::App(ImplEvent::NewView { p, v }) => {
                    println!("  t={:<7} newview {v} at {p}", ev.time)
                }
                TraceEvent::App(ImplEvent::Bcast { p, a }) => {
                    println!("  t={:<7} bcast {a:?} at {p}", ev.time)
                }
                TraceEvent::App(ImplEvent::Brcv { src, dst, a }) => {
                    println!("  t={:<7} brcv {a:?} ({src}) at {dst}", ev.time)
                }
                TraceEvent::Fail { subject, status } => {
                    println!("  t={:<7} fail {subject} → {status}", ev.time)
                }
                _ => {}
            }
        }
    }

    println!("\nfinal views:");
    for i in 0..sc.config.n {
        let p = ProcId(i);
        match stack.view_of(p) {
            Some(v) => println!("  {p}: {v}  ({} delivered)", stack.delivered(p).len()),
            None => println!("  {p}: ⊥"),
        }
    }

    let to = check_to_trace(&stack.to_obs().untimed());
    println!("\nTO-machine conformance: {to}");
    let vs = check_trace(&stack.vs_actions(), &sc.config.p0);
    println!("VS Lemma 4.2 conformance: {vs}");
    if args.safe_delivery && !vs.ok() {
        println!(
            "  (expected with --safe-delivery: Totem-style delivery does not \
             satisfy the VS safe-notification contract; see EXPERIMENTS.md E9)"
        );
    }
    let ok = to.ok() && (vs.ok() || args.safe_delivery);
    std::process::exit(if ok { 0 } else { 1 });
}
